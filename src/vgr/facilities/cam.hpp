#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "vgr/gn/router.hpp"

namespace vgr::facilities {

/// Decoded Cooperative Awareness Message content (ETSI EN 302 637-2,
/// reduced to the fields the simulation uses). Kinematics ride in the SHB's
/// position vector; the CAM payload adds vehicle attributes.
struct CamData {
  net::GnAddress station{};
  geo::Position position{};
  double speed_mps{0.0};
  double heading_rad{0.0};
  double vehicle_length_m{4.5};
  double vehicle_width_m{1.8};
  std::uint32_t generation{0};  ///< per-station CAM counter

  [[nodiscard]] net::Bytes encode() const;
  static std::optional<CamData> decode(const net::Bytes& payload,
                                       const net::LongPositionVector& pv);
};

/// Cooperative Awareness service: generates CAMs over single-hop broadcast
/// following the ETSI triggering rules — a new CAM whenever position,
/// speed or heading moved beyond thresholds since the last one (checked
/// every `check_interval`), at most every `min_interval`, and at least
/// every `max_interval`.
class CamService {
 public:
  struct Config {
    sim::Duration check_interval{sim::Duration::millis(100)};
    sim::Duration min_interval{sim::Duration::millis(100)};
    sim::Duration max_interval{sim::Duration::seconds(1.0)};
    double position_threshold_m{4.0};
    double speed_threshold_mps{0.5};
    double heading_threshold_rad{4.0 * M_PI / 180.0};
    double vehicle_length_m{4.5};
    double vehicle_width_m{1.8};
  };

  using CamHandler = std::function<void(const CamData&, sim::TimePoint)>;

  /// Attaches to `router` (which must outlive the service) and starts the
  /// generation loop. Received CAMs are surfaced through `handler`.
  CamService(sim::EventQueue& events, gn::Router& router);
  CamService(sim::EventQueue& events, gn::Router& router, Config config);
  ~CamService();

  CamService(const CamService&) = delete;
  CamService& operator=(const CamService&) = delete;

  void set_cam_handler(CamHandler handler) { handler_ = std::move(handler); }

  /// Stops generation (receiving continues while the router lives).
  void stop();

  [[nodiscard]] std::uint32_t cams_sent() const { return generation_; }
  [[nodiscard]] std::uint64_t cams_received() const { return cams_received_; }

  /// Called by the owner for every router delivery; returns true when the
  /// packet was a CAM and has been consumed.
  bool on_delivery(const gn::Router::Delivery& delivery);

 private:
  void tick();
  void generate();

  sim::EventQueue& events_;
  gn::Router& router_;
  Config config_;
  CamHandler handler_;
  sim::EventId timer_{};
  bool running_{true};
  std::shared_ptr<bool> alive_;

  std::uint32_t generation_{0};
  std::uint64_t cams_received_{0};
  sim::TimePoint last_sent_{};
  net::LongPositionVector last_pv_{};
  bool sent_any_{false};
};

}  // namespace vgr::facilities

#include "vgr/facilities/denm.hpp"

#include "vgr/net/codec.hpp"

namespace vgr::facilities {
namespace {

constexpr std::uint8_t kDenmMagic[4] = {'D', 'E', 'N', 'M'};

}  // namespace

net::Bytes DenmData::encode() const {
  net::ByteWriter w;
  for (const std::uint8_t m : kDenmMagic) w.u8(m);
  w.u64(originator.bits());
  w.u32(event_id);
  w.u8(static_cast<std::uint8_t>(cause));
  w.f64(event_position.x);
  w.f64(event_position.y);
  w.u8(cancellation ? 1 : 0);
  return w.take();
}

std::optional<DenmData> DenmData::decode(const net::Bytes& payload) {
  net::ByteReader r{payload};
  for (const std::uint8_t m : kDenmMagic) {
    const auto byte = r.u8();
    if (!byte || *byte != m) return std::nullopt;
  }
  const auto origin = r.u64();
  const auto event_id = r.u32();
  const auto cause = r.u8();
  const auto x = r.f64();
  const auto y = r.f64();
  const auto cancel = r.u8();
  if (!origin || !event_id || !cause || !x || !y || !cancel || !r.exhausted()) {
    return std::nullopt;
  }
  DenmData d;
  d.originator = net::GnAddress::from_bits(*origin);
  d.event_id = *event_id;
  d.cause = static_cast<DenmCause>(*cause);
  d.event_position = {*x, *y};
  d.cancellation = *cancel != 0;
  return d;
}

DenmService::DenmService(sim::EventQueue& events, gn::Router& router)
    : DenmService{events, router, Config{}} {}

DenmService::DenmService(sim::EventQueue& events, gn::Router& router, Config config)
    : events_{events}, router_{router}, config_{config} {
  alive_ = std::make_shared<bool>(true);
  router_.add_delivery_listener([this, alive = alive_](const gn::Router::Delivery& d) {
    if (*alive) on_delivery(d);
  });
}

DenmService::~DenmService() {
  // vgr-lint: ordered-ok (cancelling timers commutes across orders)
  for (auto& [id, event] : active_) events_.cancel(event.timer);
  *alive_ = false;
}

std::uint32_t DenmService::trigger(DenmCause cause, geo::Position event_position,
                                   const geo::GeoArea& relevance_area, sim::Duration validity) {
  const std::uint32_t id = next_event_id_++;
  ActiveEvent event;
  event.data.originator = router_.address();
  event.data.event_id = id;
  event.data.cause = cause;
  event.data.event_position = event_position;
  event.area = relevance_area;
  event.expires = events_.now() + validity;
  broadcast(event.data, event.area);
  event.timer = events_.schedule_in(config_.repetition_interval, [this, id] { repeat(id); });
  active_.emplace(id, std::move(event));
  return id;
}

void DenmService::cancel(std::uint32_t event_id) {
  const auto it = active_.find(event_id);
  if (it == active_.end()) return;
  events_.cancel(it->second.timer);
  DenmData negation = it->second.data;
  negation.cancellation = true;
  broadcast(negation, it->second.area);
  active_.erase(it);
}

void DenmService::broadcast(const DenmData& data, const geo::GeoArea& area) {
  ++denms_sent_;
  router_.send_geo_broadcast(area, data.encode(), config_.hop_limit);
}

void DenmService::repeat(std::uint32_t event_id) {
  if (!router_.running()) return;
  const auto it = active_.find(event_id);
  if (it == active_.end()) return;
  if (events_.now() >= it->second.expires) {
    active_.erase(it);
    return;
  }
  broadcast(it->second.data, it->second.area);
  it->second.timer =
      events_.schedule_in(config_.repetition_interval, [this, event_id] { repeat(event_id); });
}

void DenmService::on_delivery(const gn::Router::Delivery& delivery) {
  if (delivery.packet().gbc() == nullptr) return;
  const auto denm = DenmData::decode(delivery.packet().payload);
  if (!denm) return;
  const auto key = std::make_pair(denm->originator.bits(), denm->event_id);
  if (denm->cancellation) {
    // Surface each cancellation once, and only for events we knew about.
    const auto it = seen_.find(key);
    if (it == seen_.end() || !it->second) return;
    it->second = false;
    if (on_cancel_) on_cancel_(*denm, delivery.at);
    return;
  }
  if (const auto [it, inserted] = seen_.try_emplace(key, true); !inserted) {
    return;  // repetition of a known event
  }
  ++events_received_;
  if (on_event_) on_event_(*denm, delivery.at);
}

}  // namespace vgr::facilities

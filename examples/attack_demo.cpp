// Proof-of-concept walkthrough of both attacks and their mitigations on a
// minimal topology — the narrative version of the paper's Figures 4 and 5.
//
//   V1(0 m) --- V2(400 m) --- V3(850 m) --- V4(1300 m)     attacker @450 m
//
// Scene 1: a forged-beacon blackhole attack fails against authentication.
// Scene 2: the inter-area interception attack (replay of V3's valid beacon)
//          silently swallows V1's packet.
// Scene 3: the plausibility-check mitigation restores delivery.
// Scene 4: the intra-area blockage attack kills a CBF flood.
// Scene 5: the RHL-drop check restores the flood.

#include <cstdio>
#include <memory>
#include <vector>

#include "vgr/attack/blackhole.hpp"
#include "vgr/attack/inter_area.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/mitigation/profiles.hpp"
#include "vgr/security/authority.hpp"

using namespace vgr;
using namespace vgr::sim::literals;

namespace {

constexpr double kRange = 486.0;

struct World {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  security::CertificateAuthority ca;
  sim::Rng rng{7};

  struct Node {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
    int deliveries{0};
  };
  std::vector<std::unique_ptr<Node>> nodes;

  Node& add(double x, mitigation::Profile profile) {
    nodes.push_back(std::make_unique<Node>());
    Node& n = *nodes.back();
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x0200'0000'0100ULL + nodes.size()}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    mitigation::apply(profile, cfg);
    n.router = std::make_unique<gn::Router>(events, medium, security::Signer{ca.enroll(addr)},
                                            ca.trust_store(), *n.mobility, cfg, kRange,
                                            rng.fork());
    n.router->set_delivery_handler([&n](const gn::Router::Delivery&) { ++n.deliveries; });
    return n;
  }

  void beacons() {
    for (auto& n : nodes) n->router->send_beacon_now();
    run(100_ms);
  }
  void run(sim::Duration d) { events.run_until(events.now() + d); }
};

void scene(int number, const char* what) { std::printf("\n--- scene %d: %s ---\n", number, what); }

}  // namespace

int main() {
  std::printf("GeoNetworking attack walkthrough (paper Figs 4 & 5)\n");

  scene(1, "outsider blackhole attack is stopped by authentication");
  {
    World w;
    auto& v1 = w.add(0.0, mitigation::Profile::kNone);
    attack::BlackholeAttacker::Config cfg;
    cfg.advertised_position = {2000.0, 0.0};  // "I'm right next to the destination!"
    attack::BlackholeAttacker blackhole{w.events, w.medium, {100.0, 10.0}, 600.0, cfg};
    blackhole.start();
    w.run(4_s);
    std::printf("forged beacons sent: %llu, accepted by V1: %s (auth failures: %llu)\n",
                static_cast<unsigned long long>(blackhole.beacons_forged()),
                v1.router->location_table().find(blackhole.fake_address(), w.events.now())
                    ? "YES (bug!)"
                    : "no",
                static_cast<unsigned long long>(v1.router->stats().auth_failures));
  }

  scene(2, "inter-area interception: replaying a VALID beacon needs no keys");
  {
    World w;
    auto& v1 = w.add(0.0, mitigation::Profile::kNone);
    auto& v2 = w.add(400.0, mitigation::Profile::kNone);
    auto& v3 = w.add(850.0, mitigation::Profile::kNone);
    auto& dest = w.add(1300.0, mitigation::Profile::kNone);
    attack::InterAreaInterceptor interceptor{w.events, w.medium, {450.0, 10.0}, 900.0};
    w.beacons();
    w.run(10_ms);

    v1.router->send_geo_broadcast(geo::GeoArea::circle({1300.0, 0.0}, 60.0), {0x01});
    w.run(3_s);
    std::printf("beacons replayed by attacker: %llu\n",
                static_cast<unsigned long long>(interceptor.beacons_replayed()));
    std::printf("V1 believes V3 (850 m away!) is a neighbour: %s\n",
                v1.router->location_table().find(v3.router->address(), w.events.now())
                    ? "yes — poisoned"
                    : "no");
    std::printf("packet delivered at destination: %s; V2 ever forwarded: %s\n",
                dest.deliveries > 0 ? "yes" : "NO — intercepted",
                v2.router->stats().gf_unicast_forwards > 0 ? "yes" : "no (bypassed)");
  }

  scene(3, "plausibility check (mitigation #1) restores delivery");
  {
    World w;
    auto& v1 = w.add(0.0, mitigation::Profile::kPlausibilityCheck);
    w.add(400.0, mitigation::Profile::kPlausibilityCheck);
    w.add(850.0, mitigation::Profile::kPlausibilityCheck);
    auto& dest = w.add(1300.0, mitigation::Profile::kPlausibilityCheck);
    attack::InterAreaInterceptor interceptor{w.events, w.medium, {450.0, 10.0}, 900.0};
    w.beacons();
    w.run(10_ms);
    v1.router->send_geo_broadcast(geo::GeoArea::circle({1300.0, 0.0}, 60.0), {0x02});
    w.run(3_s);
    std::printf("attacker still replays (%llu beacons), but delivery: %s; "
                "implausible hops vetoed: %llu\n",
                static_cast<unsigned long long>(interceptor.beacons_replayed()),
                dest.deliveries > 0 ? "RESTORED" : "still blocked",
                static_cast<unsigned long long>(v1.router->stats().gf_plausibility_rejections));
  }

  scene(4, "intra-area blockage: RHL rewrite kills the CBF flood");
  {
    World w;
    auto& v1 = w.add(0.0, mitigation::Profile::kNone);
    auto& v2 = w.add(400.0, mitigation::Profile::kNone);
    auto& v3 = w.add(800.0, mitigation::Profile::kNone);
    auto& v4 = w.add(1200.0, mitigation::Profile::kNone);
    attack::IntraAreaBlocker blocker{w.events, w.medium, {200.0, 10.0}, 550.0};
    w.beacons();
    v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {0x03});
    w.run(3_s);
    std::printf("replays: %llu; V2 got it: %s but contention suppressed: %llu; "
                "V3 reached: %s; V4 reached: %s\n",
                static_cast<unsigned long long>(blocker.packets_replayed()),
                v2.deliveries ? "yes" : "no",
                static_cast<unsigned long long>(v2.router->stats().cbf_suppressed),
                v3.deliveries ? "yes" : "NO", v4.deliveries ? "yes" : "NO — flood dead");
  }

  scene(5, "RHL-drop check (mitigation #2) keeps the flood alive");
  {
    World w;
    auto& v1 = w.add(0.0, mitigation::Profile::kRhlDropCheck);
    auto& v2 = w.add(400.0, mitigation::Profile::kRhlDropCheck);
    w.add(800.0, mitigation::Profile::kRhlDropCheck);
    auto& v4 = w.add(1200.0, mitigation::Profile::kRhlDropCheck);
    attack::IntraAreaBlocker blocker{w.events, w.medium, {200.0, 10.0}, 550.0};
    w.beacons();
    v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {0x04});
    w.run(3_s);
    std::printf("replays: %llu; V2 rejected the steep RHL drop %llu time(s); "
                "flood reached V4: %s\n",
                static_cast<unsigned long long>(blocker.packets_replayed()),
                static_cast<unsigned long long>(v2.router->stats().cbf_mitigation_keeps),
                v4.deliveries ? "YES" : "no");
  }

  std::printf("\ndone — see bench/ for the full quantitative reproduction.\n");
  return 0;
}

// Demonstrates two supporting services of the stack:
//  1. the Location Service — GeoUnicast to a station whose position is
//     unknown triggers an LS request flood and resumes once the reply maps
//     the target;
//  2. pseudonym rotation — a station swaps certificate + GN address + MAC
//     mid-run and communication continues under the new alias, while an
//     eavesdropper cannot link the aliases from signatures alone (it *can*
//     still track positions, which is why the paper's attacks don't care
//     about pseudonyms).
//
// Build & run:  ./example_location_service_privacy

#include <cstdio>
#include <memory>
#include <vector>

#include "vgr/attack/sniffer.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/pseudonym.hpp"

using namespace vgr;
using namespace vgr::sim::literals;

int main() {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  security::CertificateAuthority ca;
  sim::Rng rng{99};
  const double range = 486.0;

  struct Node {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
  };
  std::vector<Node> nodes;
  for (int i = 0; i < 4; ++i) {
    Node n;
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{i * 400.0, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x0200'0000'0B00ULL + static_cast<unsigned>(i)}};
    n.router = std::make_unique<gn::Router>(events, medium, security::Signer{ca.enroll(addr)},
                                            ca.trust_store(), *n.mobility,
                                            gn::RouterConfig{}, range, rng.fork());
    n.router->set_delivery_handler([i](const gn::Router::Delivery& d) {
      std::printf("  node %d <- %zu bytes at t=%.3f s\n", i, d.packet().payload.size(),
                  d.at.to_seconds());
    });
    n.router->start();
    nodes.push_back(std::move(n));
  }
  events.run_until(sim::TimePoint::at(4_s));  // a round of beacons

  // --- Location Service ---------------------------------------------------
  std::printf("node 0 geo-unicasts to node 3 (1,200 m away, position unknown)...\n");
  const bool knows = nodes[0]
                         .router->location_table()
                         .find(nodes[3].router->address(), events.now())
                         .has_value();
  std::printf("  node 0 has node 3 in its location table: %s\n", knows ? "yes" : "no");
  nodes[0].router->send_geo_unicast_resolving(nodes[3].router->address(), {'L', 'S'});
  events.run_until(events.now() + 2_s);
  std::printf("  LS requests sent: %llu, resolved: %llu\n",
              static_cast<unsigned long long>(nodes[0].router->stats().ls_requests_sent),
              static_cast<unsigned long long>(nodes[0].router->stats().ls_resolved));

  // --- Pseudonym rotation ----------------------------------------------------
  attack::Sniffer eavesdropper{events, medium, {600.0, 15.0}, 1283.0};
  security::PseudonymManager pool{ca, nodes[1].router->mac(), 4, sim::Duration::seconds(30.0),
                                  rng.fork()};

  const auto before = nodes[1].router->address();
  std::printf("\nnode 1 rotates its pseudonym (old alias %s)...\n",
              to_string(before).c_str());
  nodes[1].router->rotate_identity(pool.active(events.now()));
  const auto after = nodes[1].router->address();
  std::printf("  new alias %s (rotations: %llu)\n", to_string(after).c_str(),
              static_cast<unsigned long long>(nodes[1].router->stats().identity_rotations));

  nodes[1].router->send_beacon_now();
  events.run_until(events.now() + 1_s);
  std::printf("  peers accept the new alias: node 0 lists it: %s\n",
              nodes[0].router->location_table().find(after, events.now()) ? "yes" : "no");

  std::printf("\nnode 0 geo-unicasts 'hi' to the NEW alias...\n");
  nodes[0].router->send_geo_unicast_resolving(after, {'h', 'i'});
  events.run_until(events.now() + 2_s);

  // The eavesdropper sees both aliases as distinct stations...
  std::printf("\neavesdropper observed %zu distinct station aliases — but note it still\n"
              "tracked every alias's *position* from the unencrypted PVs, which is all\n"
              "the paper's replay attacks need.\n",
              eavesdropper.observations().size());
  return 0;
}

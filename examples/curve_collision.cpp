// Domain scenario: cooperative collision avoidance at a blind curve (the
// paper's Fig 11b use case). V1 swerves into the oncoming lane to pass a
// hazard and broadcasts a CBF lane-change warning that the roadside unit R1
// relays around the terrain obstruction. Run benign and attacked and
// compare outcomes.
//
// Build & run:  ./example_curve_collision

#include <cstdio>

#include "vgr/scenario/curve.hpp"

using namespace vgr;

namespace {

void report(const char* label, const scenario::CurveResult& r) {
  std::printf("%s:\n", label);
  if (r.warning_delivered) {
    std::printf("  V2 received the lane-change warning at t=%.2f s\n",
                r.warning_delivered_at_s);
  } else {
    std::printf("  V2 never received the warning\n");
  }
  if (r.collision) {
    std::printf("  => head-on COLLISION at t=%.2f s\n", r.collision_time_s);
  } else {
    std::printf("  => vehicles passed safely (min head-on gap %.1f m)\n", r.min_gap_m);
  }
  // Compact speed profile, one sample per second.
  std::printf("  t:   ");
  for (std::size_t i = 0; i < r.profile.size(); i += 10) std::printf("%5.0f", r.profile[i].t);
  std::printf("\n  V1:  ");
  for (std::size_t i = 0; i < r.profile.size(); i += 10) {
    std::printf("%5.1f", r.profile[i].v1_speed);
  }
  std::printf("\n  V2:  ");
  for (std::size_t i = 0; i < r.profile.size(); i += 10) {
    std::printf("%5.1f", r.profile[i].v2_speed);
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("blind-curve cooperative awareness (paper Fig 11b / Fig 13)\n\n");
  scenario::CurveConfig cfg;

  cfg.attacked = false;
  report("benign (R1 relays the warning)", run_curve_scenario(cfg));

  cfg.attacked = true;
  report("attacked (targeted replay silences R1)", run_curve_scenario(cfg));

  std::printf("the attacker never broke a signature: it replayed V1's own validly\n"
              "signed warning at low power so that only R1 heard it, which cancelled\n"
              "R1's contention timer — the relay the safety case depended on.\n");
  return 0;
}

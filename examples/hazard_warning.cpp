// Domain scenario: a hazard blocks the eastbound lanes of a highway and the
// stopped traffic warns the road entrance over GeoNetworking (the paper's
// Fig 11a use case). Runs the benign deployment and the attacked one and
// prints the resulting traffic-jam sizes.
//
// Build & run:  ./example_hazard_warning [sim_seconds]

#include <cstdio>
#include <cstdlib>

#include "vgr/scenario/hazard.hpp"

using namespace vgr;

int main(int argc, char** argv) {
  double seconds = 120.0;
  if (argc > 1) seconds = std::strtod(argv[1], nullptr);

  scenario::HazardConfig cfg;
  cfg.mode = scenario::HazardConfig::Case::kCbfFlood;  // CBF warning flood
  cfg.road_length_m = 4000.0;
  cfg.hazard_x_m = 3600.0;
  cfg.sim_duration = sim::Duration::seconds(seconds);

  std::printf("hazard at 3,600 m on a 4 km two-way highway; warning flooded via CBF\n\n");

  cfg.attacked = false;
  const auto benign = scenario::HazardScenario{cfg}.run();
  std::printf("benign:   entrance notified %s%s -> %0.f vehicles on road at t=%.0f s\n",
              benign.entrance_notified ? "at t=" : "never",
              benign.entrance_notified
                  ? std::to_string(benign.notified_at_s).substr(0, 4).c_str()
                  : "",
              benign.final_vehicle_count, seconds);

  cfg.attacked = true;
  const auto attacked = scenario::HazardScenario{cfg}.run();
  std::printf("attacked: entrance notified %s -> %0.f vehicles on road at t=%.0f s\n",
              attacked.entrance_notified ? "yes" : "never (blockage attack)",
              attacked.final_vehicle_count, seconds);

  std::printf("\nthe intra-area blockage attacker (500 m, road centre) suppressed the\n"
              "warning: %+.0f extra vehicles drove into the blocked segment.\n",
              attacked.final_vehicle_count - benign.final_vehicle_count);

  std::printf("\ntimeline (vehicles on road):\n  t(s)   benign  attacked\n");
  for (std::size_t i = 0; i < benign.vehicles_over_time.size(); i += 20) {
    std::printf("  %-6.0f %-7.0f %-7.0f\n", benign.vehicles_over_time[i].first,
                benign.vehicles_over_time[i].second,
                i < attacked.vehicles_over_time.size() ? attacked.vehicles_over_time[i].second
                                                       : 0.0);
  }
  return 0;
}

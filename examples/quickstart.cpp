// Quickstart: bring up a small GeoNetworking deployment on the simulated
// V2X channel, exchange beacons, and GeoBroadcast a payload into a
// destination area. Walks the core public API end to end:
//
//   EventQueue -> Medium -> CertificateAuthority -> Router
//      -> send_geo_broadcast / send_geo_unicast -> delivery handlers.
//
// Build & run:  ./example_quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"

using namespace vgr;
using namespace vgr::sim::literals;

int main() {
  // 1. Simulation substrate: a deterministic event queue and a DSRC channel.
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};

  // 2. Security substrate: one CA; every station enrolls for a certificate.
  security::CertificateAuthority ca;

  // 3. Five stations in a line, 400 m apart, all using the DSRC NLoS median
  //    range from the paper's Table II.
  const double range = phy::range_table(phy::AccessTechnology::kDsrc).nlos_median_m;
  sim::Rng rng{2024};

  struct Station {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
  };
  std::vector<Station> stations;
  for (int i = 0; i < 5; ++i) {
    Station st;
    st.mobility = std::make_unique<gn::StaticMobility>(geo::Position{i * 400.0, 2.5});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x0200'0000'0A00ULL + static_cast<unsigned>(i)}};
    gn::RouterConfig config = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    st.router = std::make_unique<gn::Router>(events, medium, security::Signer{ca.enroll(addr)},
                                             ca.trust_store(), *st.mobility, config, range,
                                             rng.fork());
    const int index = i;
    st.router->set_delivery_handler([index](const gn::Router::Delivery& d) {
      std::printf("  station %d received %zu-byte payload at t=%.3f s (from %s)\n", index,
                  d.packet().payload.size(), d.at.to_seconds(), to_string(d.from_mac).c_str());
    });
    st.router->start();  // periodic beaconing: 3 s +/- 0.75 s jitter
    stations.push_back(std::move(st));
  }

  // 4. Let beacons populate the location tables.
  events.run_until(sim::TimePoint::at(5_s));
  std::printf("after 5 s of beaconing, station 0 knows %zu neighbours\n",
              stations[0].router->location_table().size(events.now()));

  // 5. GeoBroadcast from station 0 into a circular area around the far end.
  //    Stations outside the area greedy-forward; stations inside flood it
  //    with contention-based forwarding.
  std::printf("station 0 geo-broadcasts into a 100 m circle around x=1600...\n");
  stations[0].router->send_geo_broadcast(geo::GeoArea::circle({1600.0, 2.5}, 100.0),
                                         net::Bytes{'h', 'a', 'z', 'a', 'r', 'd'});
  events.run_until(events.now() + 2_s);

  // 6. GeoUnicast from station 4 back to station 1.
  std::printf("station 4 geo-unicasts to station 1...\n");
  stations[4].router->send_geo_unicast(stations[1].router->address(), {400.0, 2.5},
                                       net::Bytes{'a', 'c', 'k'});
  events.run_until(events.now() + 2_s);

  // 7. Inspect router statistics.
  std::printf("\nper-station stats (beacons tx / gf forwards / cbf rebroadcasts):\n");
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const gn::RouterStats& s = stations[i].router->stats();
    std::printf("  station %zu: %llu / %llu / %llu\n", i,
                static_cast<unsigned long long>(s.beacons_sent),
                static_cast<unsigned long long>(s.gf_unicast_forwards),
                static_cast<unsigned long long>(s.cbf_rebroadcasts));
  }
  std::printf("channel: %llu frames sent, %llu delivered\n",
              static_cast<unsigned long long>(medium.frames_sent()),
              static_cast<unsigned long long>(medium.frames_delivered()));
  return 0;
}

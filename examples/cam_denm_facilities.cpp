// Facilities-layer walkthrough: Cooperative Awareness Messages (CAMs) and
// Decentralized Environmental Notification Messages (DENMs) running on top
// of the GeoNetworking router — the actual ITS message services the paper's
// motivating use cases (emergency braking warnings, traffic-jam notices)
// ride on.
//
// Build & run:  ./example_cam_denm_facilities

#include <cstdio>
#include <memory>
#include <vector>

#include "vgr/facilities/cam.hpp"
#include "vgr/facilities/denm.hpp"
#include "vgr/security/authority.hpp"

using namespace vgr;
using namespace vgr::sim::literals;

int main() {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  security::CertificateAuthority ca;
  sim::Rng rng{7};

  struct Station {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
    std::unique_ptr<facilities::CamService> cam;
    std::unique_ptr<facilities::DenmService> denm;
  };
  std::vector<Station> stations;
  for (int i = 0; i < 4; ++i) {
    Station st;
    st.mobility = std::make_unique<gn::StaticMobility>(geo::Position{i * 400.0, 2.5});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x0200'0000'0C00ULL + static_cast<unsigned>(i)}};
    st.router = std::make_unique<gn::Router>(
        events, medium, security::Signer{ca.enroll(addr)}, ca.trust_store(), *st.mobility,
        gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc), 486.0, rng.fork());
    st.router->start();
    st.cam = std::make_unique<facilities::CamService>(events, *st.router);
    st.denm = std::make_unique<facilities::DenmService>(events, *st.router);
    stations.push_back(std::move(st));
  }

  stations[3].denm->set_event_handler([&](const facilities::DenmData& d, sim::TimePoint at) {
    std::printf("  station 3: DENM event %u (cause %u) at (%.0f, %.0f), t=%.2f s\n",
                d.event_id, static_cast<unsigned>(d.cause), d.event_position.x,
                d.event_position.y, at.to_seconds());
  });
  stations[3].denm->set_cancel_handler([&](const facilities::DenmData& d, sim::TimePoint at) {
    std::printf("  station 3: DENM event %u CANCELLED, t=%.2f s\n", d.event_id,
                at.to_seconds());
  });

  std::printf("running 5 s of cooperative awareness...\n");
  events.run_until(sim::TimePoint::at(5_s));
  std::printf("  station 1 sent %u CAMs, received %llu; GN beacons suppressed: %llu sent\n",
              stations[1].cam->cams_sent(),
              static_cast<unsigned long long>(stations[1].cam->cams_received()),
              static_cast<unsigned long long>(stations[1].router->stats().beacons_sent));

  std::printf("\nstation 0 raises a stationary-vehicle DENM over the whole strip...\n");
  const auto event_id = stations[0].denm->trigger(
      facilities::DenmCause::kStationaryVehicle, {20.0, 2.5},
      geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), 60_s);
  events.run_until(events.now() + 3_s);
  std::printf("  repetitions on air so far: %llu (deduplicated to one upward event)\n",
              static_cast<unsigned long long>(stations[0].denm->denms_sent()));

  std::printf("\nthe obstruction clears; station 0 cancels the event...\n");
  stations[0].denm->cancel(event_id);
  events.run_until(events.now() + 2_s);

  std::printf("\ndone. CAMs carried position vectors (populating neighbour tables in\n"
              "place of bare GN beacons), DENMs carried the warning — both signed, both\n"
              "replayable by the paper's attacker.\n");
  return 0;
}

// Reproduces paper Figure 7: effectiveness of the inter-area interception
// attack under (a) DSRC attack-range sweep, (b) C-V2X attack-range sweep,
// (c) LocTE TTL sweep, (d) inter-vehicle-space sweep, (e) one- vs
// two-direction roads. Prints the per-setting packet reception rates and
// the interception rate gamma the paper annotates on each subfigure.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "vgr/scenario/highway.hpp"
#include "vgr/sweep/ab_sweep.hpp"

using namespace vgr;
using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

namespace {

/// Every sweep point goes through the crash-resilient sweep supervisor
/// (VGR_SWEEP=1 journals and resumes; the default disabled supervisor is
/// exactly run_inter_area_ab, so historical output stays byte-identical).
sweep::Supervisor& supervisor() {
  static sweep::Supervisor sup{sweep::SupervisorConfig::from_env()};
  return sup;
}

AbResult run_supervised(const std::string& label, const HighwayConfig& cfg,
                        const Fidelity& fidelity) {
  return sweep::run_ab_supervised(supervisor(), sweep::Experiment::kInterArea, label, cfg,
                                  fidelity)
      .result;
}

struct RangeSetting {
  const char* label;
  const char* key;
  double range_m;
};

void subfigure_ab(phy::AccessTechnology tech, const char* name, const Fidelity& fidelity) {
  const phy::RangeTable ranges = phy::range_table(tech);
  const RangeSetting settings[] = {
      {"mL (median LoS)", "mL", ranges.los_median_m},
      {"mN (median NLoS)", "mN", ranges.nlos_median_m},
      {"wN (worst NLoS)", "wN", ranges.nlos_worst_m},
  };
  std::printf("\nFig 7%s — %s, attack range sweep (vehicles at NLoS median %.0f m)\n", name,
              phy::name(tech), ranges.nlos_median_m);
  for (const auto& s : settings) {
    HighwayConfig cfg;
    cfg.tech = tech;
    cfg.attack_range_m = s.range_m;
    const AbResult r = run_supervised(std::string{"fig7"} + name + "-" + s.key, cfg, fidelity);
    bench::print_summary_row(s.label, r, "gamma");
    bench::maybe_export(std::string{"fig7"} + name + "_" + s.key, r);
    if (bench::verbose()) bench::print_ab_series(r);
  }
}

}  // namespace

int main() {
  const Fidelity fidelity = Fidelity::from_env(3);
  bench::banner("Figure 7", "inter-area interception attack effectiveness", fidelity);

  subfigure_ab(phy::AccessTechnology::kDsrc, "a", fidelity);
  subfigure_ab(phy::AccessTechnology::kCv2x, "b", fidelity);

  // (c) LocTE TTL sweep: DSRC, worst-NLoS attacker, plus the paper's
  // "mN @ TTL 5 s" check that a short TTL does not save the victim from a
  // stronger attacker.
  std::printf("\nFig 7c — DSRC, wN attacker, LocTE TTL sweep\n");
  for (const double ttl : {20.0, 10.0, 5.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_worst_m;
    cfg.locte_ttl = sim::Duration::seconds(ttl);
    const AbResult r = run_supervised(
        "fig7c-ttl" + std::to_string(static_cast<int>(ttl)), cfg, fidelity);
    bench::print_summary_row("TTL " + std::to_string(static_cast<int>(ttl)) + " s", r, "gamma");
    if (bench::verbose()) bench::print_ab_series(r);
  }
  {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_median_m;
    cfg.locte_ttl = sim::Duration::seconds(5.0);
    const AbResult r = run_supervised("fig7c-ttl5-mN", cfg, fidelity);
    bench::print_summary_row("TTL 5 s, mN attacker", r, "gamma");
  }

  // (d) Traffic density sweep via inter-vehicle spacing.
  std::printf("\nFig 7d — DSRC, wN attacker, inter-vehicle space sweep\n");
  for (const double spacing : {30.0, 100.0, 300.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_worst_m;
    cfg.entry_spacing_m = spacing;
    cfg.prefill_spacing_m = spacing;
    const AbResult r = run_supervised(
        "fig7d-space" + std::to_string(static_cast<int>(spacing)), cfg, fidelity);
    bench::print_summary_row("i = " + std::to_string(static_cast<int>(spacing)) + " m", r,
                             "gamma");
  }

  // (e) Road directions.
  std::printf("\nFig 7e — DSRC, wN attacker, road directions\n");
  for (const bool two_way : {false, true}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_worst_m;
    cfg.two_way = two_way;
    const AbResult r = run_supervised(two_way ? "fig7e-two-way" : "fig7e-one-way", cfg, fidelity);
    bench::print_summary_row(two_way ? "two directions" : "single direction", r, "gamma");
  }

  // Extension: end-to-end delivery latency of the surviving packets (the
  // paper does not report latency; useful for judging the GF+buffering
  // path).
  std::printf("\nDelivery latency of received packets (DSRC, wN attacker, seed 1)\n");
  {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_worst_m;
    if (fidelity.sim_seconds > 0.0) cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
    for (const bool attacked : {false, true}) {
      cfg.attack = attacked ? scenario::AttackKind::kInterArea : scenario::AttackKind::kNone;
      const auto r = scenario::HighwayScenario{cfg}.run_inter_area();
      const auto lat = r.latency();
      if (lat.empty()) {
        std::printf("  %-14s no deliveries\n", attacked ? "attacked" : "attacker-free");
      } else {
        std::printf("  %-14s p50 = %6.3f s, p95 = %6.3f s, max = %6.3f s (n=%zu)\n",
                    attacked ? "attacked" : "attacker-free", lat.median(), lat.quantile(0.95),
                    lat.max(), lat.count());
      }
    }
  }

  std::printf("\npaper reference: gamma = 99.9%% (DSRC mL), 100%% (C-V2X mL), 46.8%% (wN),\n"
              "and gamma falling as TTL shrinks (46.8 / 46.2 / 37.4%%), stable over density,\n"
              "higher on two-direction roads (58.3%%).\n");
  return 0;
}

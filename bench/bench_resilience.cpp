// bench_resilience — PDR and interception under deterministic fault
// injection and node churn (docs/robustness.md).
//
// Two sweeps over the inter-area experiment, each point a full paired A/B
// (attacker-free vs inter-area interceptor) plus a mitigated arm (both §V
// defenses enabled under attack) and a recovery arm (the self-healing
// forwarding plane of docs/robustness.md — SCF buffering, bounded per-hop
// retransmission and the neighbour monitor — with no attacker, against
// the same degraded channel):
//
//  1. Channel-loss sweep: frame drop + per-link loss + byte corruption
//     scaled together from a clean channel to a badly degraded one, with a
//     Gilbert–Elliott burst component at the upper settings.
//  2. Churn sweep: fleet-wide crash/reboot rate from none to one crash
//     every two seconds.
//
//  3. Congestion sweep: the replay flooder (attack #3, a certificate-less
//     outsider replaying captured frames purely for airtime) at an
//     escalating rate against a CSMA/CA fleet, once with DCC off and once
//     with reactive DCC on. The contrast is the point: plain CSMA collapses
//     under load (CW escalation overshoots the flood gaps, retries exhaust)
//     while the DCC arm sheds beacons and paces data but keeps delivering.
//
// The question each curve answers: does the attack's advantage (and the
// mitigation's recovery) survive on a lossy, churning network, or was it an
// artifact of the clean simulation? Writes BENCH_resilience.json (override
// with VGR_BENCH_JSON). Defaults finish in a few minutes; raise VGR_RUNS /
// VGR_SIM_SECONDS for full fidelity.
//
// The sweep body lives in vgr/sweep/resilience_sweep so the same study runs
// under the crash-resilient sweep supervisor (VGR_SWEEP=1, docs/robustness.md
// "Sweep supervisor") and from the vgr_sweep CLI. With the supervisor off —
// the default — the output is byte-identical to the historical monolithic
// bench.

#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "vgr/sweep/resilience_sweep.hpp"

int main() {
  using namespace vgr;
  const scenario::Fidelity fidelity = scenario::Fidelity::from_env(/*default_runs=*/4);
  vgr::bench::banner("bench_resilience",
                     "attack + mitigation under channel faults and node churn", fidelity,
                     /*default_sim_seconds=*/20.0);
  scenario::Fidelity f = fidelity;
  if (f.sim_seconds <= 0.0) f.sim_seconds = 20.0;

  sweep::Supervisor supervisor{sweep::SupervisorConfig::from_env()};
  if (!supervisor.ok()) return 1;

  const char* out = std::getenv("VGR_BENCH_JSON");
  const std::string path = out != nullptr ? out : "BENCH_resilience.json";
  return sweep::run_resilience_sweep(supervisor, f, sweep::ResilienceSelection{}, path);
}

// bench_resilience — PDR and interception under deterministic fault
// injection and node churn (docs/robustness.md).
//
// Two sweeps over the inter-area experiment, each point a full paired A/B
// (attacker-free vs inter-area interceptor) plus a mitigated arm (both §V
// defenses enabled under attack) and a recovery arm (the self-healing
// forwarding plane of docs/robustness.md — SCF buffering, bounded per-hop
// retransmission and the neighbour monitor — with no attacker, against
// the same degraded channel):
//
//  1. Channel-loss sweep: frame drop + per-link loss + byte corruption
//     scaled together from a clean channel to a badly degraded one, with a
//     Gilbert–Elliott burst component at the upper settings.
//  2. Churn sweep: fleet-wide crash/reboot rate from none to one crash
//     every two seconds.
//
//  3. Congestion sweep: the replay flooder (attack #3, a certificate-less
//     outsider replaying captured frames purely for airtime) at an
//     escalating rate against a CSMA/CA fleet, once with DCC off and once
//     with reactive DCC on. The contrast is the point: plain CSMA collapses
//     under load (CW escalation overshoots the flood gaps, retries exhaust)
//     while the DCC arm sheds beacons and paces data but keeps delivering.
//
// The question each curve answers: does the attack's advantage (and the
// mitigation's recovery) survive on a lossy, churning network, or was it an
// artifact of the clean simulation? Writes BENCH_resilience.json (override
// with VGR_BENCH_JSON). Defaults finish in a few minutes; raise VGR_RUNS /
// VGR_SIM_SECONDS for full fidelity.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace vgr;

struct Row {
  std::string axis;      // "loss" or "churn"
  double level;          // drop probability / crashes per second
  double recv_baseline;  // attacker-free reception
  double recv_attacked;  // attacked reception
  double gamma;          // interception rate, no mitigation
  double recv_mitigated; // attacked reception, both §V defenses
  double gamma_mitigated;
  double recv_recovered;  // attacker-free reception, SCF+retx+monitor on
  double gamma_recovered; // interception rate with the recovery layer on
};

Row run_point(const scenario::HighwayConfig& cfg, const scenario::Fidelity& fidelity,
              const std::string& axis, double level) {
  Row row;
  row.axis = axis;
  row.level = level;

  const scenario::AbResult plain = scenario::run_inter_area_ab(cfg, fidelity);
  row.recv_baseline = plain.baseline_reception;
  row.recv_attacked = plain.attacked_reception;
  row.gamma = plain.attack_rate;

  scenario::HighwayConfig mitigated = cfg;
  mitigated.mitigation = mitigation::Profile::kFull;
  const scenario::AbResult guarded = scenario::run_inter_area_ab(mitigated, fidelity);
  row.recv_mitigated = guarded.attacked_reception;
  row.gamma_mitigated = guarded.attack_rate;

  scenario::HighwayConfig recovered = cfg;
  recovered.recovery.scf = true;
  recovered.recovery.retx = true;
  recovered.recovery.nbr_monitor = true;
  const scenario::AbResult healed = scenario::run_inter_area_ab(recovered, fidelity);
  row.recv_recovered = healed.baseline_reception;
  row.gamma_recovered = healed.attack_rate;

  const auto timed_out =
      plain.timed_out_runs + guarded.timed_out_runs + healed.timed_out_runs;
  if (timed_out > 0) {
    std::fprintf(stderr, "  [watchdog] %llu run(s) stopped on the per-run budget\n",
                 static_cast<unsigned long long>(timed_out));
  }
  return row;
}

/// One point of the congestion sweep: the same flooder rate against a
/// MAC-enabled fleet with DCC off vs on. `recv_*` are honest (attacked-arm)
/// delivery rates; the counters are summed over every attacked run.
struct CongestionRow {
  double flood_hz;
  double recv_off;  // honest delivery, CSMA only
  double recv_on;   // honest delivery, CSMA + reactive DCC
  std::uint64_t retry_off, overflow_off;
  std::uint64_t retry_on, overflow_on, gated_on;
  double cbr_off, cbr_on;  // peak channel-busy ratio seen by any station
  std::uint64_t frames_flooded;
};

CongestionRow run_congestion_point(const scenario::HighwayConfig& base,
                                   const scenario::Fidelity& fidelity, double flood_hz) {
  CongestionRow row{};
  row.flood_hz = flood_hz;

  scenario::HighwayConfig cfg = base;
  cfg.attack = scenario::AttackKind::kCongestionFlood;
  cfg.flood_rate_hz = flood_hz;
  cfg.mac.enabled = true;
  // CAM-rate awareness beaconing (ETSI EN 302 637-2 upper rate) and 10 Hz
  // application traffic. The GN default of one beacon per 3 s leaves the
  // channel so idle that neither CSMA contention nor DCC pacing ever
  // engages; a realistic V2X channel carries 10 Hz awareness traffic, which
  // is the load DCC is specified against — and what the flooder's airtime
  // has to squeeze out. The short queue matches 802.11p-class hardware,
  // where latency-critical safety frames are never buffered deeply.
  cfg.beacon_interval = sim::Duration::seconds(0.1);
  cfg.packet_interval = sim::Duration::seconds(0.1);
  cfg.mac.queue_limit = 2;

  cfg.dcc.enabled = false;
  const scenario::AbResult off = scenario::run_inter_area_ab(cfg, fidelity);
  row.recv_off = off.attacked_reception;
  row.retry_off = off.attacked_totals.mac_retry_exhausted;
  row.overflow_off = off.attacked_totals.mac_queue_overflow;
  row.cbr_off = off.attacked_totals.peak_cbr;

  cfg.dcc.enabled = true;
  const scenario::AbResult on = scenario::run_inter_area_ab(cfg, fidelity);
  row.recv_on = on.attacked_reception;
  row.retry_on = on.attacked_totals.mac_retry_exhausted;
  row.overflow_on = on.attacked_totals.mac_queue_overflow;
  row.gated_on = on.attacked_totals.mac_dcc_gated;
  row.cbr_on = on.attacked_totals.peak_cbr;
  row.frames_flooded = on.attacked_totals.frames_flooded;
  return row;
}

void print_congestion_row(const CongestionRow& r) {
  std::printf("  flood %7.0f Hz  dcc-off: recv=%6.3f cbr=%.2f retry=%llu ovfl=%llu   "
              "dcc-on: recv=%6.3f cbr=%.2f retry=%llu ovfl=%llu gated=%llu\n",
              r.flood_hz, r.recv_off, r.cbr_off,
              static_cast<unsigned long long>(r.retry_off),
              static_cast<unsigned long long>(r.overflow_off), r.recv_on, r.cbr_on,
              static_cast<unsigned long long>(r.retry_on),
              static_cast<unsigned long long>(r.overflow_on),
              static_cast<unsigned long long>(r.gated_on));
}

void print_row(const Row& r) {
  std::printf("  %-7s %-8.3f recv_af=%6.3f recv_atk=%6.3f gamma=%6.1f%%  "
              "recv_mit=%6.3f gamma_mit=%6.1f%%  recv_rec=%6.3f gamma_rec=%6.1f%%\n",
              r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma * 100.0,
              r.recv_mitigated, r.gamma_mitigated * 100.0, r.recv_recovered,
              r.gamma_recovered * 100.0);
}

}  // namespace

int main() {
  const scenario::Fidelity fidelity = scenario::Fidelity::from_env(/*default_runs=*/4);
  vgr::bench::banner("bench_resilience",
                     "attack + mitigation under channel faults and node churn", fidelity,
                     /*default_sim_seconds=*/20.0);
  scenario::Fidelity f = fidelity;
  if (f.sim_seconds <= 0.0) f.sim_seconds = 20.0;

  std::vector<Row> rows;

  // --- Sweep 1: channel loss ----------------------------------------------
  std::printf("\n[1] Channel-loss sweep (frame drop + link loss + corruption, GE bursts)\n");
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    scenario::HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.faults.drop_probability = drop;
    cfg.faults.link_loss_probability = drop / 2.0;
    cfg.faults.corrupt_probability = drop / 4.0;
    if (drop >= 0.2) {
      // Upper settings add a burst component: ~5-frame bad states in which
      // everything is lost, entered roughly every hundred frames.
      cfg.faults.ge_p_good_to_bad = 0.01;
      cfg.faults.ge_p_bad_to_good = 0.2;
    }
    rows.push_back(run_point(cfg, f, "loss", drop));
    print_row(rows.back());
  }

  // --- Sweep 2: node churn ------------------------------------------------
  std::printf("\n[2] Churn sweep (fleet-wide crash rate, 2 s downtime, always reboot)\n");
  for (const double rate : {0.0, 0.1, 0.25, 0.5}) {
    scenario::HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.churn.crash_rate_hz = rate;
    cfg.churn.downtime_s = 2.0;
    rows.push_back(run_point(cfg, f, "churn", rate));
    print_row(rows.back());
  }

  // --- Sweep 3: channel congestion ---------------------------------------
  std::printf("\n[3] Congestion sweep (replay flooder vs CSMA/CA, DCC off/on)\n");
  std::vector<CongestionRow> congestion;
  for (const double hz : {0.0, 1000.0, 2500.0, 5000.0, 5500.0}) {
    scenario::HighwayConfig cfg;
    congestion.push_back(run_congestion_point(cfg, f, hz));
    print_congestion_row(congestion.back());
  }

  // --- JSON artifact ------------------------------------------------------
  const char* out = std::getenv("VGR_BENCH_JSON");
  const std::string path = out != nullptr ? out : "BENCH_resilience.json";
  std::FILE* fjson = std::fopen(path.c_str(), "w");
  if (fjson == nullptr) {
    std::fprintf(stderr, "bench_resilience: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(fjson, "{\n  \"runs\": %llu,\n  \"sim_seconds\": %.1f,\n  \"points\": [\n",
               static_cast<unsigned long long>(f.runs), f.sim_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(fjson,
                 "    {\"axis\": \"%s\", \"level\": %.3f, \"recv_baseline\": %.17g, "
                 "\"recv_attacked\": %.17g, \"gamma\": %.17g, \"recv_mitigated\": %.17g, "
                 "\"gamma_mitigated\": %.17g, \"recv_recovered\": %.17g, "
                 "\"gamma_recovered\": %.17g}%s\n",
                 r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma,
                 r.recv_mitigated, r.gamma_mitigated, r.recv_recovered, r.gamma_recovered,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fjson, "  ],\n  \"congestion\": [\n");
  for (std::size_t i = 0; i < congestion.size(); ++i) {
    const CongestionRow& r = congestion[i];
    std::fprintf(fjson,
                 "    {\"flood_hz\": %.0f, \"recv_dcc_off\": %.17g, \"recv_dcc_on\": %.17g, "
                 "\"peak_cbr_off\": %.17g, \"peak_cbr_on\": %.17g, "
                 "\"retry_exhausted_off\": %llu, \"queue_overflow_off\": %llu, "
                 "\"retry_exhausted_on\": %llu, \"queue_overflow_on\": %llu, "
                 "\"dcc_gated_on\": %llu, \"frames_flooded\": %llu}%s\n",
                 r.flood_hz, r.recv_off, r.recv_on, r.cbr_off, r.cbr_on,
                 static_cast<unsigned long long>(r.retry_off),
                 static_cast<unsigned long long>(r.overflow_off),
                 static_cast<unsigned long long>(r.retry_on),
                 static_cast<unsigned long long>(r.overflow_on),
                 static_cast<unsigned long long>(r.gated_on),
                 static_cast<unsigned long long>(r.frames_flooded),
                 i + 1 < congestion.size() ? "," : "");
  }
  std::fprintf(fjson, "  ]\n}\n");
  std::fclose(fjson);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

// bench_resilience — PDR and interception under deterministic fault
// injection and node churn (docs/robustness.md).
//
// Two sweeps over the inter-area experiment, each point a full paired A/B
// (attacker-free vs inter-area interceptor) plus a mitigated arm (both §V
// defenses enabled under attack) and a recovery arm (the self-healing
// forwarding plane of docs/robustness.md — SCF buffering, bounded per-hop
// retransmission and the neighbour monitor — with no attacker, against
// the same degraded channel):
//
//  1. Channel-loss sweep: frame drop + per-link loss + byte corruption
//     scaled together from a clean channel to a badly degraded one, with a
//     Gilbert–Elliott burst component at the upper settings.
//  2. Churn sweep: fleet-wide crash/reboot rate from none to one crash
//     every two seconds.
//
// The question each curve answers: does the attack's advantage (and the
// mitigation's recovery) survive on a lossy, churning network, or was it an
// artifact of the clean simulation? Writes BENCH_resilience.json (override
// with VGR_BENCH_JSON). Defaults finish in a few minutes; raise VGR_RUNS /
// VGR_SIM_SECONDS for full fidelity.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace vgr;

struct Row {
  std::string axis;      // "loss" or "churn"
  double level;          // drop probability / crashes per second
  double recv_baseline;  // attacker-free reception
  double recv_attacked;  // attacked reception
  double gamma;          // interception rate, no mitigation
  double recv_mitigated; // attacked reception, both §V defenses
  double gamma_mitigated;
  double recv_recovered;  // attacker-free reception, SCF+retx+monitor on
  double gamma_recovered; // interception rate with the recovery layer on
};

Row run_point(const scenario::HighwayConfig& cfg, const scenario::Fidelity& fidelity,
              const std::string& axis, double level) {
  Row row;
  row.axis = axis;
  row.level = level;

  const scenario::AbResult plain = scenario::run_inter_area_ab(cfg, fidelity);
  row.recv_baseline = plain.baseline_reception;
  row.recv_attacked = plain.attacked_reception;
  row.gamma = plain.attack_rate;

  scenario::HighwayConfig mitigated = cfg;
  mitigated.mitigation = mitigation::Profile::kFull;
  const scenario::AbResult guarded = scenario::run_inter_area_ab(mitigated, fidelity);
  row.recv_mitigated = guarded.attacked_reception;
  row.gamma_mitigated = guarded.attack_rate;

  scenario::HighwayConfig recovered = cfg;
  recovered.recovery.scf = true;
  recovered.recovery.retx = true;
  recovered.recovery.nbr_monitor = true;
  const scenario::AbResult healed = scenario::run_inter_area_ab(recovered, fidelity);
  row.recv_recovered = healed.baseline_reception;
  row.gamma_recovered = healed.attack_rate;

  const auto timed_out =
      plain.timed_out_runs + guarded.timed_out_runs + healed.timed_out_runs;
  if (timed_out > 0) {
    std::fprintf(stderr, "  [watchdog] %llu run(s) stopped on the per-run budget\n",
                 static_cast<unsigned long long>(timed_out));
  }
  return row;
}

void print_row(const Row& r) {
  std::printf("  %-7s %-8.3f recv_af=%6.3f recv_atk=%6.3f gamma=%6.1f%%  "
              "recv_mit=%6.3f gamma_mit=%6.1f%%  recv_rec=%6.3f gamma_rec=%6.1f%%\n",
              r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma * 100.0,
              r.recv_mitigated, r.gamma_mitigated * 100.0, r.recv_recovered,
              r.gamma_recovered * 100.0);
}

}  // namespace

int main() {
  const scenario::Fidelity fidelity = scenario::Fidelity::from_env(/*default_runs=*/4);
  vgr::bench::banner("bench_resilience",
                     "attack + mitigation under channel faults and node churn", fidelity,
                     /*default_sim_seconds=*/20.0);
  scenario::Fidelity f = fidelity;
  if (f.sim_seconds <= 0.0) f.sim_seconds = 20.0;

  std::vector<Row> rows;

  // --- Sweep 1: channel loss ----------------------------------------------
  std::printf("\n[1] Channel-loss sweep (frame drop + link loss + corruption, GE bursts)\n");
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    scenario::HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.faults.drop_probability = drop;
    cfg.faults.link_loss_probability = drop / 2.0;
    cfg.faults.corrupt_probability = drop / 4.0;
    if (drop >= 0.2) {
      // Upper settings add a burst component: ~5-frame bad states in which
      // everything is lost, entered roughly every hundred frames.
      cfg.faults.ge_p_good_to_bad = 0.01;
      cfg.faults.ge_p_bad_to_good = 0.2;
    }
    rows.push_back(run_point(cfg, f, "loss", drop));
    print_row(rows.back());
  }

  // --- Sweep 2: node churn ------------------------------------------------
  std::printf("\n[2] Churn sweep (fleet-wide crash rate, 2 s downtime, always reboot)\n");
  for (const double rate : {0.0, 0.1, 0.25, 0.5}) {
    scenario::HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.churn.crash_rate_hz = rate;
    cfg.churn.downtime_s = 2.0;
    rows.push_back(run_point(cfg, f, "churn", rate));
    print_row(rows.back());
  }

  // --- JSON artifact ------------------------------------------------------
  const char* out = std::getenv("VGR_BENCH_JSON");
  const std::string path = out != nullptr ? out : "BENCH_resilience.json";
  std::FILE* fjson = std::fopen(path.c_str(), "w");
  if (fjson == nullptr) {
    std::fprintf(stderr, "bench_resilience: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(fjson, "{\n  \"runs\": %llu,\n  \"sim_seconds\": %.1f,\n  \"points\": [\n",
               static_cast<unsigned long long>(f.runs), f.sim_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(fjson,
                 "    {\"axis\": \"%s\", \"level\": %.3f, \"recv_baseline\": %.17g, "
                 "\"recv_attacked\": %.17g, \"gamma\": %.17g, \"recv_mitigated\": %.17g, "
                 "\"gamma_mitigated\": %.17g, \"recv_recovered\": %.17g, "
                 "\"gamma_recovered\": %.17g}%s\n",
                 r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma,
                 r.recv_mitigated, r.gamma_mitigated, r.recv_recovered, r.gamma_recovered,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fjson, "  ]\n}\n");
  std::fclose(fjson);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

#pragma once

// Shared output helpers for the figure-reproduction harnesses. Every bench
// prints (1) a banner naming the paper artifact it regenerates, (2) the
// fidelity in use, and (3) rows/series shaped like the paper's plots.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "vgr/scenario/ab_runner.hpp"
#include "vgr/scenario/csv.hpp"
#include "vgr/sim/thread_pool.hpp"

namespace vgr::bench {

inline void banner(const char* artifact, const char* description,
                   const scenario::Fidelity& fidelity, double default_sim_seconds = 200.0) {
  std::printf("==========================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  const double secs =
      fidelity.sim_seconds > 0.0 ? fidelity.sim_seconds : default_sim_seconds;
  const std::size_t threads =
      fidelity.threads > 0 ? fidelity.threads : sim::ThreadPool::default_thread_count();
  std::printf("fidelity: %llu run(s) x %.0f simulated seconds per arm, %zu thread(s) "
              "(override: VGR_RUNS / VGR_SIM_SECONDS / VGR_THREADS; paper: 100 x 200)\n",
              static_cast<unsigned long long>(fidelity.runs), secs, threads);
  std::printf("==========================================================================\n");
}

/// Prints a reception-rate timeline as one row per bin pair, paper style:
/// solid (attacker-free) vs dashed (attacked).
inline void print_ab_series(const scenario::AbResult& r) {
  std::printf("  %-10s %-12s %-12s\n", "t (s)", "recv af", "recv atk");
  const double width = r.baseline.bin_width().to_seconds();
  for (std::size_t i = 0; i < r.baseline.bin_count(); ++i) {
    if (!r.baseline.has_data(i) && !r.attacked.has_data(i)) continue;
    std::printf("  %-10.0f %-12.3f %-12.3f\n", (static_cast<double>(i) + 1.0) * width,
                r.baseline.rate(i), r.attacked.rate(i));
  }
}

/// One summary row of a sweep table.
inline void print_summary_row(const std::string& setting, const scenario::AbResult& r,
                              const char* rate_symbol) {
  std::printf("  %-28s recv_af=%6.3f  recv_atk=%6.3f  %s=%6.1f%%\n", setting.c_str(),
              r.baseline_reception, r.attacked_reception, rate_symbol, r.attack_rate * 100.0);
}

inline bool verbose() { return std::getenv("VGR_SERIES") != nullptr; }

/// Writes the A/B reception timelines to `$VGR_CSV_DIR/<name>.csv` when CSV
/// export is enabled (no-op otherwise).
inline void maybe_export(const std::string& name, const scenario::AbResult& r) {
  const std::string dir = scenario::CsvWriter::env_dir();
  if (dir.empty()) return;
  scenario::CsvWriter::write_timelines(dir, name, {"attacker_free", "attacked"},
                                       {&r.baseline, &r.attacked});
}

}  // namespace vgr::bench

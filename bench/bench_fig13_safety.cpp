// Reproduces paper Figure 13: speed profiles of V1 and V2 at the blind
// curve. Benign run: R1 relays V1's lane-change warning, V2 brakes early,
// no collision. Attacked run: the targeted-replay blockage variant silences
// R1's relay; both vehicles emergency-brake at the sight line and collide.

#include <cstdio>

#include "vgr/scenario/curve.hpp"

using namespace vgr;
using scenario::CurveConfig;
using scenario::CurveResult;

namespace {

void print_profile(const char* title, const CurveResult& r) {
  std::printf("\n%s\n", title);
  if (r.warning_delivered) {
    std::printf("  warning delivered to V2 at t=%.3f s\n", r.warning_delivered_at_s);
  } else {
    std::printf("  warning NOT delivered to V2\n");
  }
  std::printf("  %-8s %-12s %-12s %-10s %-10s\n", "t (s)", "V1 (m/s)", "V2 (m/s)", "V1 x",
              "V2 x");
  for (std::size_t i = 0; i < r.profile.size(); i += 5) {  // every 0.5 s
    const auto& s = r.profile[i];
    std::printf("  %-8.1f %-12.2f %-12.2f %-10.1f %-10.1f\n", s.t, s.v1_speed, s.v2_speed,
                s.v1_x, s.v2_x);
  }
  if (r.collision) {
    std::printf("  ** COLLISION at t=%.2f s **\n", r.collision_time_s);
  } else {
    std::printf("  no collision (minimum head-on gap %.1f m)\n", r.min_gap_m);
  }
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Figure 13 — road-safety impact at a blind curve (Fig 11b scenario)\n");
  std::printf("==========================================================================\n");

  CurveConfig cfg;
  cfg.attacked = false;
  print_profile("Fig 13 (green) — attacker-free: R1 relays the CBF warning",
                run_curve_scenario(cfg));
  cfg.attacked = true;
  print_profile("Fig 13 (red) — intra-area blockage variant aimed at R1",
                run_curve_scenario(cfg));

  std::printf("\npaper reference: with the warning, V2 decelerates early and the vehicles\n"
              "pass safely; under attack both emergency-brake on sight and collide.\n");
  return 0;
}

// Reproduces paper Figure 12: number of vehicles on the road over time when
// a hazard blocks both eastbound lanes at 3,600 m (t = 5 s) and the hazard
// notification toward the entrance is (a) Greedy-Forwarded and suppressed by
// the inter-area interception attack, (b) CBF-flooded and suppressed by the
// intra-area blockage attack.

#include <cstdio>

#include "vgr/scenario/hazard.hpp"

using namespace vgr;
using scenario::HazardConfig;
using scenario::HazardResult;
using scenario::HazardScenario;

namespace {

double env_seconds(double fallback) {
  if (const char* env = std::getenv("VGR_SIM_SECONDS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  return fallback;
}

void run_case(HazardConfig::Case mode, const char* title) {
  HazardConfig cfg;
  cfg.mode = mode;
  // Case 1 needs a longer horizon in this substrate: the GF notification
  // only starts getting through once the eastbound column reaches the
  // reporter's neighbourhood and outweighs the stale oncoming-vehicle
  // entries (see EXPERIMENTS.md; the paper observed ~60 s, we observe
  // ~150-190 s).
  const double default_secs = mode == HazardConfig::Case::kGreedyForwarding ? 300.0 : 200.0;
  cfg.sim_duration = sim::Duration::seconds(env_seconds(default_secs));

  cfg.attacked = false;
  const HazardResult af = HazardScenario{cfg}.run();
  cfg.attacked = true;
  const HazardResult atk = HazardScenario{cfg}.run();

  std::printf("\n%s\n", title);
  std::printf("  entrance notified: af=%s (t=%.0f s), atk=%s%s\n",
              af.entrance_notified ? "yes" : "no", af.notified_at_s,
              atk.entrance_notified ? "yes" : "no",
              atk.entrance_notified
                  ? (" (t=" + std::to_string(atk.notified_at_s) + " s)").c_str()
                  : "");
  std::printf("  %-8s %-10s %-10s\n", "t (s)", "af", "atk");
  for (std::size_t i = 0; i < af.vehicles_over_time.size(); i += 10) {
    const double atk_n =
        i < atk.vehicles_over_time.size() ? atk.vehicles_over_time[i].second : 0.0;
    std::printf("  %-8.0f %-10.0f %-10.0f\n", af.vehicles_over_time[i].first,
                af.vehicles_over_time[i].second, atk_n);
  }
  std::printf("  final on-road count: af=%.0f, atk=%.0f (+%.0f vehicles jammed)\n",
              af.final_vehicle_count, atk.final_vehicle_count,
              atk.final_vehicle_count - af.final_vehicle_count);
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Figure 12 — traffic-efficiency impact of both attacks (hazard @3,600 m)\n");
  std::printf("==========================================================================\n");

  run_case(HazardConfig::Case::kGreedyForwarding,
           "Fig 12a — case 1: GF notification vs inter-area interception (mN attacker)");
  run_case(HazardConfig::Case::kCbfFlood,
           "Fig 12b — case 2: CBF notification vs intra-area blockage (500 m attacker)");

  std::printf("\npaper reference: af curves plateau once the entrance learns of the hazard\n"
              "(~65 s for GF across two-direction traffic, immediately for CBF); attacked\n"
              "curves keep climbing (195 / 201 vehicles at 200 s vs 140 / 125).\n");
  return 0;
}

// Ablation studies for the design choices DESIGN.md calls out:
//  1. RHL rewrite on/off for the intra-area blocker (why the attacker must
//     rewrite the unprotected hop limit when over-reaching).
//  2. Beacon period sweep (staleness of the GF picture vs overhead).
//  3. Plausibility-check threshold sweep around the paper's 486 m.
//  4. Plausibility check with and without PV extrapolation (the component
//     that also helps attacker-free traffic).

#include <cstdio>

#include "bench_util.hpp"
#include "vgr/scenario/highway.hpp"

using namespace vgr;
using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

namespace {

double inter_attacked_reception(HighwayConfig cfg, const Fidelity& fidelity) {
  if (fidelity.sim_seconds > 0.0) cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
  cfg.attack = scenario::AttackKind::kInterArea;
  double hits = 0.0, total = 0.0;
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    cfg.seed = run + 1;
    const auto r = scenario::HighwayScenario{cfg}.run_inter_area();
    hits += r.overall_reception() * static_cast<double>(r.packets.size());
    total += static_cast<double>(r.packets.size());
  }
  return total > 0.0 ? hits / total : 0.0;
}

}  // namespace

int main() {
  const Fidelity fidelity = Fidelity::from_env(2);
  bench::banner("Ablations", "design-choice studies beyond the paper's figures", fidelity);
  const phy::RangeTable ranges = phy::range_table(phy::AccessTechnology::kDsrc);

  // 1. RHL rewrite on/off. Without the rewrite, a full-power replay seeds
  //    fresh CBF contention among first-time receivers and the flood
  //    recovers; with it, they all exhaust the hop budget.
  std::printf("\nAblation 1 — intra-area blocker with and without the RHL rewrite (mN)\n");
  for (const bool rewrite : {true, false}) {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_median_m;
    cfg.blocker.mode = rewrite ? attack::IntraAreaBlocker::Mode::kRhlRewrite
                               : attack::IntraAreaBlocker::Mode::kTargetedReplay;
    cfg.blocker.targeted_range_m = -1.0;  // variant at full power, RHL intact
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row(rewrite ? "RHL rewritten to 1" : "RHL left intact", r, "lambda");
  }

  // 2. Beacon period sweep (attacker-free inter-area reception): longer
  //    periods mean staler neighbour tables and more GF losses.
  std::printf("\nAblation 2 — beacon period vs attacker-free GF reception\n");
  for (const double period : {1.0, 3.0, 6.0, 10.0}) {
    HighwayConfig cfg;
    if (fidelity.sim_seconds > 0.0) {
      cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
    }
    cfg.attack_range_m = ranges.nlos_worst_m;
    cfg.beacon_interval = sim::Duration::seconds(period);
    double hits = 0.0, total = 0.0;
    for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
      cfg.seed = run + 1;
      const auto r = scenario::HighwayScenario{cfg}.run_inter_area();
      hits += r.overall_reception() * static_cast<double>(r.packets.size());
      total += static_cast<double>(r.packets.size());
    }
    std::printf("  beacon period %4.0f s: attacker-free reception = %.3f\n", period,
                total > 0.0 ? hits / total : 0.0);
  }

  // 3. Plausibility threshold sweep under the mN attacker.
  std::printf("\nAblation 3 — plausibility threshold vs attacked reception (mN attacker)\n");
  for (const double threshold : {243.0, 400.0, 486.0, 600.0, 800.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_median_m;
    cfg.mitigation = mitigation::Profile::kPlausibilityCheck;
    cfg.mitigation_params.plausibility_threshold_m = threshold;
    std::printf("  threshold %4.0f m: attacked reception = %.3f\n", threshold,
                inter_attacked_reception(cfg, fidelity));
  }

  // 4. Extrapolation on/off.
  std::printf("\nAblation 4 — plausibility check with / without PV extrapolation (mN)\n");
  for (const bool extrapolate : {true, false}) {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_median_m;
    cfg.mitigation = mitigation::Profile::kPlausibilityCheck;
    cfg.mitigation_params.extrapolate = extrapolate;
    std::printf("  extrapolation %-3s: attacked reception = %.3f\n", extrapolate ? "on" : "off",
                inter_attacked_reception(cfg, fidelity));
  }

  // 5. The ACK alternative the paper's §V-A dismisses: per-hop
  //    acknowledgements also recover reception under attack, but at a
  //    measurable airtime cost. We report reception and channel overhead
  //    for {nothing, ACKs, plausibility check}.
  std::printf("\nAblation 5 — ACK'd forwarding vs plausibility check (mN attacker)\n");
  {
    struct Arm {
      const char* label;
      bool ack;
      mitigation::Profile profile;
    } arms[] = {
        {"no defense", false, mitigation::Profile::kNone},
        {"per-hop ACKs", true, mitigation::Profile::kNone},
        {"plausibility check", false, mitigation::Profile::kPlausibilityCheck},
    };
    for (const auto& arm : arms) {
      HighwayConfig cfg;
      if (fidelity.sim_seconds > 0.0) {
        cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
      }
      cfg.attack_range_m = ranges.nlos_median_m;
      cfg.attack = scenario::AttackKind::kInterArea;
      cfg.gf_ack = arm.ack;
      cfg.mitigation = arm.profile;
      double hits = 0.0, total = 0.0, frames = 0.0;
      for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
        cfg.seed = run + 1;
        scenario::HighwayScenario scn{cfg};
        const auto r = scn.run_inter_area();
        hits += r.overall_reception() * static_cast<double>(r.packets.size());
        total += static_cast<double>(r.packets.size());
        frames += static_cast<double>(scn.medium().frames_sent());
      }
      std::printf("  %-20s attacked reception = %.3f, channel frames/run = %.0f\n",
                  arm.label, total > 0.0 ? hits / total : 0.0,
                  frames / static_cast<double>(fidelity.runs));
    }
  }

  // 6. Co-channel interference: does the attacker's extra airtime or the
  //    CBF flood itself suffer when collisions are modelled?
  std::printf("\nAblation 6 — intra-area attack with interference modelled (mN)\n");
  for (const bool interference : {false, true}) {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_median_m;
    cfg.interference = interference;
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row(interference ? "interference on" : "interference off", r,
                             "lambda");
  }

  // 7. Pseudonym rotation: privacy does not equal security — the replay
  //    attacks never depend on linking identities.
  std::printf("\nAblation 7 — pseudonym rotation vs the inter-area attack (mN)\n");
  for (const double period : {-1.0, 30.0, 10.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_median_m;
    cfg.pseudonym_period_s = period;
    const AbResult r = run_inter_area_ab(cfg, fidelity);
    char label[64];
    if (period <= 0.0) {
      std::snprintf(label, sizeof label, "no rotation");
    } else {
      std::snprintf(label, sizeof label, "rotate every %.0f s", period);
    }
    bench::print_summary_row(label, r, "gamma");
  }

  return 0;
}

// bench_scale — scaling harness for the two perf axes of the reproduction:
//
//  1. Medium scaling: one highway run per vehicle density, spatial index on
//     vs off, to show the O(N^2) -> O(N*k) crossover of per-frame delivery
//     cost as the road fills up.
//  2. Harness scaling: the same paired A/B experiment executed with the
//     serial path (VGR_THREADS=1) and with the work-stealing pool, proving
//     the merged results are bit-identical and reporting the wall-clock
//     speedup.
//
// Defaults are sized to finish in a couple of minutes (VGR_RUNS=8, 10
// simulated seconds); raise VGR_SIM_SECONDS / VGR_RUNS for a full-fidelity
// measurement. Writes BENCH_scale.json (override with VGR_BENCH_JSON).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "vgr/sim/thread_pool.hpp"

namespace {

using namespace vgr;

double wall_seconds(const std::function<void()>& fn) {
  // vgr-lint: begin wall-clock-ok (this benchmark measures wall time; the
  // timed simulation itself stays on the virtual clock)
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
  // vgr-lint: end
}

struct SweepRow {
  double spacing_m;
  std::size_t vehicles;
  std::uint64_t frames;
  double scan_s;
  double grid_s;
  std::uint64_t rebuilds;
};

struct HarnessRow {
  std::size_t threads;
  double wall_s;
  double attack_rate;
  bool oversubscribed;
};

struct StripRow {
  std::size_t threads;
  double wall_s;
  double reception;
  std::uint64_t frames;
  bool oversubscribed;
};

}  // namespace

int main() {
  const scenario::Fidelity fidelity = scenario::Fidelity::from_env(/*default_runs=*/8);
  const double sweep_seconds = fidelity.sim_seconds > 0.0 ? fidelity.sim_seconds : 10.0;

  vgr::bench::banner("bench_scale", "spatial-index crossover + parallel harness speedup",
                     fidelity, /*default_sim_seconds=*/10.0);

  // --- Part 1: per-frame medium cost vs vehicle density -------------------
  // The intra-area CBF flood is the broadcast-storm workload: every packet
  // fans out over the whole segment, so medium cost dominates the run.
  std::printf("\n[1] Medium scaling (intra-area flood, %d s simulated, seed 1)\n",
              static_cast<int>(sweep_seconds));
  std::printf("  %-12s %-10s %-12s %-12s %-12s %-10s %-9s\n", "spacing (m)", "vehicles",
              "frames", "scan (s)", "grid (s)", "rebuilds", "speedup");

  std::vector<SweepRow> sweep;
  for (const double spacing : {60.0, 30.0, 15.0, 7.5}) {
    scenario::HighwayConfig cfg;
    cfg.prefill_spacing_m = spacing;
    cfg.entry_spacing_m = spacing;
    cfg.sim_duration = sim::Duration::seconds(sweep_seconds);
    cfg.seed = 1;
    cfg.attack = scenario::AttackKind::kNone;

    SweepRow row{};
    row.spacing_m = spacing;
    for (const bool index_on : {false, true}) {
      // Best of two reps: a scenario run is short enough that scheduler
      // noise on a busy host can otherwise invert a 10-20 % delta.
      double secs = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        scenario::HighwayConfig c = cfg;
        c.spatial_index = index_on;
        scenario::HighwayScenario scenario{c};
        secs = std::min(secs, wall_seconds([&] { (void)scenario.run_intra_area(); }));
        if (index_on) row.rebuilds = scenario.medium().index_rebuilds();
        row.vehicles = scenario.stations_created();
        row.frames = scenario.medium().frames_sent();
      }
      (index_on ? row.grid_s : row.scan_s) = secs;
    }
    std::printf("  %-12.1f %-10zu %-12llu %-12.3f %-12.3f %-10llu %6.2fx\n", row.spacing_m,
                row.vehicles, static_cast<unsigned long long>(row.frames), row.scan_s,
                row.grid_s, static_cast<unsigned long long>(row.rebuilds),
                row.scan_s / std::max(row.grid_s, 1e-9));
    sweep.push_back(row);
  }

  // --- Part 2: serial vs parallel experiment harness ----------------------
  // Fixed thread ladder rather than {1, hardware_concurrency()}: on a
  // single-core host the auto value collapses to 1 and the old A/B printed
  // two identical serial rows. The ladder also shows where oversubscription
  // stops paying on small machines.
  const std::size_t cores = sim::ThreadPool::hardware_threads();
  std::printf(
      "\n[2] Harness scaling (inter-area A/B, %llu runs x %d s, threads in {1,2,4,8}, "
      "%zu hardware core(s))\n",
      static_cast<unsigned long long>(fidelity.runs), static_cast<int>(sweep_seconds), cores);

  scenario::HighwayConfig ab_cfg;
  ab_cfg.attack = scenario::AttackKind::kInterArea;
  scenario::Fidelity f = fidelity;
  if (f.sim_seconds <= 0.0) f.sim_seconds = sweep_seconds;

  std::vector<HarnessRow> harness;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    scenario::Fidelity ft = f;
    ft.threads = threads;
    std::optional<scenario::AbResult> result;
    const double secs =
        wall_seconds([&] { result.emplace(scenario::run_inter_area_ab(ab_cfg, ft)); });
    const bool oversub = threads > cores;
    harness.push_back({threads, secs, result->attack_rate, oversub});
    std::printf("  threads=%-3zu wall=%7.2f s  gamma=%8.5f%s%s\n", threads, secs,
                result->attack_rate * 100.0, threads == 1 ? "  (reference)" : "",
                oversub ? "  [oversubscribed: threads > cores]" : "");
    if (threads != 1 && harness.front().attack_rate != result->attack_rate) {
      std::printf("  ERROR: parallel gamma differs from serial — determinism broken\n");
      return 1;
    }
  }
  const auto best = std::min_element(
      harness.begin() + 1, harness.end(),
      [](const HarnessRow& a, const HarnessRow& b) { return a.wall_s < b.wall_s; });
  std::printf("  best speedup: %.2fx on %zu threads (bit-identical results)\n",
              harness.front().wall_s / std::max(best->wall_s, 1e-9), best->threads);

  // --- Part 3: intra-run strip parallelism --------------------------------
  // One dense intra-area run decomposed into 4 spatial strips, executed at
  // every worker count of the ladder. The strip count is a model parameter
  // (fixed at 4 for the whole ladder) so every row must reproduce the same
  // reception and frame count bit-for-bit; threads only move the wall
  // clock. Rows with threads > hardware cores are flagged oversubscribed
  // and EXCLUDED from the reported speedup — on a 1-core CI host every
  // multi-threaded row is excluded and the ladder degenerates to a
  // determinism check, which is exactly what such a host can verify.
  std::printf("\n[3] Intra-run strip ladder (intra-area flood, 4 strips, %d s, seed 1)\n",
              static_cast<int>(sweep_seconds));

  std::vector<StripRow> ladder;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    scenario::HighwayConfig cfg;
    cfg.prefill_spacing_m = 15.0;
    cfg.entry_spacing_m = 15.0;
    cfg.sim_duration = sim::Duration::seconds(sweep_seconds);
    cfg.seed = 1;
    cfg.attack = scenario::AttackKind::kNone;
    cfg.strips = 4;
    cfg.strip_threads = threads;

    // Best of two reps, like Part 1: one scenario run is short enough for
    // scheduler noise to swamp a 2x delta on a loaded host.
    double secs = 1e300;
    StripRow row{};
    for (int rep = 0; rep < 2; ++rep) {
      scenario::HighwayScenario scenario{cfg};
      std::optional<scenario::IntraAreaResult> result;
      secs = std::min(secs, wall_seconds([&] { result.emplace(scenario.run_intra_area()); }));
      row.reception = result->overall_reception();
      row.frames = scenario.medium().frames_sent();
    }
    row.threads = threads;
    row.wall_s = secs;
    row.oversubscribed = threads > cores;
    ladder.push_back(row);
    std::printf("  strip_threads=%-3zu wall=%7.3f s  reception=%8.5f  frames=%-8llu%s%s\n",
                threads, secs, row.reception, static_cast<unsigned long long>(row.frames),
                threads == 1 ? "  (reference)" : "",
                row.oversubscribed ? "  [oversubscribed: excluded from speedup]" : "");
    if (threads != 1 && (ladder.front().reception != row.reception ||
                         ladder.front().frames != row.frames)) {
      std::printf("  ERROR: strip output differs across worker counts — determinism broken\n");
      return 1;
    }
  }
  const auto eligible = std::min_element(
      ladder.begin() + 1, ladder.end(), [](const StripRow& a, const StripRow& b) {
        if (a.oversubscribed != b.oversubscribed) return !a.oversubscribed;
        return a.wall_s < b.wall_s;
      });
  if (eligible->oversubscribed) {
    std::printf("  strip speedup: n/a (every multi-threaded row oversubscribed on %zu core(s); "
                "determinism verified)\n", cores);
  } else {
    std::printf("  strip speedup: %.2fx on %zu threads (bit-identical results)\n",
                ladder.front().wall_s / std::max(eligible->wall_s, 1e-9), eligible->threads);
  }

  // --- JSON trajectory ----------------------------------------------------
  const char* out = std::getenv("VGR_BENCH_JSON");
  const std::string path = out != nullptr ? out : "BENCH_scale.json";
  std::FILE* fjson = std::fopen(path.c_str(), "w");
  if (fjson == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(fjson, "{\n  \"medium_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(fjson,
                 "    {\"spacing_m\": %.1f, \"vehicles\": %zu, \"frames\": %llu, "
                 "\"scan_s\": %.4f, \"grid_s\": %.4f, \"index_rebuilds\": %llu}%s\n",
                 r.spacing_m, r.vehicles, static_cast<unsigned long long>(r.frames), r.scan_s,
                 r.grid_s, static_cast<unsigned long long>(r.rebuilds),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(fjson, "  ],\n  \"hardware_concurrency\": %zu,\n  \"harness\": [\n", cores);
  for (std::size_t i = 0; i < harness.size(); ++i) {
    const HarnessRow& r = harness[i];
    std::fprintf(fjson,
                 "    {\"threads\": %zu, \"wall_s\": %.3f, \"attack_rate\": %.17g, "
                 "\"oversubscribed\": %s}%s\n",
                 r.threads, r.wall_s, r.attack_rate, r.oversubscribed ? "true" : "false",
                 i + 1 < harness.size() ? "," : "");
  }
  std::fprintf(fjson, "  ],\n  \"strip_ladder\": [\n");
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const StripRow& r = ladder[i];
    std::fprintf(fjson,
                 "    {\"strip_threads\": %zu, \"wall_s\": %.3f, \"reception\": %.17g, "
                 "\"frames\": %llu, \"oversubscribed\": %s}%s\n",
                 r.threads, r.wall_s, r.reception, static_cast<unsigned long long>(r.frames),
                 r.oversubscribed ? "true" : "false", i + 1 < ladder.size() ? "," : "");
  }
  std::fprintf(fjson, "  ]\n}\n");
  std::fclose(fjson);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

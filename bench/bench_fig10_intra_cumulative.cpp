// Reproduces paper Figure 10: accumulated intra-area blockage rate over
// time for the DSRC scenarios. Attack coverage is the only factor that
// should move the curves; increasing the attack range beyond the optimum
// lowers them again.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace vgr;
using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

int main() {
  const Fidelity fidelity = Fidelity::from_env(3);
  bench::banner("Figure 10", "accumulated intra-area blockage rate over time (DSRC)",
                fidelity);

  const phy::RangeTable ranges = phy::range_table(phy::AccessTechnology::kDsrc);

  struct Scenario {
    const char* label;
    HighwayConfig cfg;
  };
  std::vector<Scenario> scenarios;
  {
    HighwayConfig c;
    c.attack_range_m = ranges.nlos_worst_m;
    scenarios.push_back({"wN_dflt", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = ranges.nlos_median_m;
    scenarios.push_back({"mN_dflt", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = 500.0;
    scenarios.push_back({"500_dflt", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = ranges.los_median_m;
    scenarios.push_back({"mL_dflt", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = ranges.nlos_median_m;
    c.locte_ttl = sim::Duration::seconds(5.0);
    scenarios.push_back({"mN_ttl5", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = ranges.nlos_median_m;
    c.entry_spacing_m = 100.0;
    c.prefill_spacing_m = 100.0;
    scenarios.push_back({"mN_i100", c});
  }
  {
    HighwayConfig c;
    c.attack_range_m = ranges.nlos_median_m;
    c.two_way = true;
    scenarios.push_back({"mN_2dir", c});
  }

  std::vector<AbResult> results;
  results.reserve(scenarios.size());
  for (const auto& s : scenarios) results.push_back(run_intra_area_ab(s.cfg, fidelity));

  std::printf("\ncumulative blockage rate over time:\n  %-8s", "t (s)");
  for (const auto& s : scenarios) std::printf(" %-9s", s.label);
  std::printf("\n");
  const std::size_t bins = results.front().baseline.bin_count();
  const double width = results.front().baseline.bin_width().to_seconds();
  for (std::size_t i = 0; i < bins; ++i) {
    std::printf("  %-8.0f", (static_cast<double>(i) + 1.0) * width);
    for (const auto& r : results) {
      const double af = r.baseline.cumulative(i);
      const double atk = r.attacked.cumulative(i);
      const double rate = af > 0.0 ? 1.0 - atk / af : 0.0;
      std::printf(" %-9.3f", rate < 0.0 ? 0.0 : rate);
    }
    std::printf("\n");
  }

  std::printf("\nfinal accumulated blockage rates:\n");
  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    const double af = results[k].baseline.cumulative(bins - 1);
    const double atk = results[k].attacked.cumulative(bins - 1);
    std::printf("  %-10s %.1f%%\n", scenarios[k].label,
                af > 0.0 ? (1.0 - atk / af) * 100.0 : 0.0);
  }
  std::printf("\npaper reference: curves cluster by attack coverage only (~38%% around the\n"
              "mN/500 m optimum); TTL and density variants overlap their defaults; mL sits\n"
              "lower than mN despite the larger range.\n");
  return 0;
}

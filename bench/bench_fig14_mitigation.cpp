// Reproduces paper Figure 14: effectiveness of the standard-compatible
// mitigations — (a) the GF plausibility check (threshold = DSRC NLoS
// median) against the inter-area interception attack at three attack
// ranges, including the attacker-free bonus the paper highlights; (b) the
// CBF RHL-drop check (threshold 3) against the intra-area blockage attack.

#include <cstdio>

#include "bench_util.hpp"
#include "vgr/scenario/highway.hpp"

using namespace vgr;
using scenario::Fidelity;
using scenario::HighwayConfig;

namespace {

/// Merged reception over `runs` paired seeds for one (attack, mitigation)
/// arm of the inter-area experiment.
double inter_arm(HighwayConfig cfg, const Fidelity& fidelity, bool attacked, bool mitigated) {
  if (fidelity.sim_seconds > 0.0) cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
  cfg.attack = attacked ? scenario::AttackKind::kInterArea : scenario::AttackKind::kNone;
  cfg.mitigation =
      mitigated ? mitigation::Profile::kPlausibilityCheck : mitigation::Profile::kNone;
  double hits = 0.0, total = 0.0;
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    cfg.seed = run + 1;
    const auto r = scenario::HighwayScenario{cfg}.run_inter_area();
    hits += r.overall_reception() * static_cast<double>(r.packets.size());
    total += static_cast<double>(r.packets.size());
  }
  return total > 0.0 ? hits / total : 0.0;
}

double intra_arm(HighwayConfig cfg, const Fidelity& fidelity, bool attacked, bool mitigated) {
  if (fidelity.sim_seconds > 0.0) cfg.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
  cfg.attack = attacked ? scenario::AttackKind::kIntraArea : scenario::AttackKind::kNone;
  cfg.mitigation = mitigated ? mitigation::Profile::kRhlDropCheck : mitigation::Profile::kNone;
  double hits = 0.0, total = 0.0;
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    cfg.seed = run + 1;
    const auto r = scenario::HighwayScenario{cfg}.run_intra_area();
    for (const auto& fl : r.floods) {
      hits += static_cast<double>(fl.reached);
      total += static_cast<double>(fl.total);
    }
  }
  return total > 0.0 ? hits / total : 0.0;
}

}  // namespace

int main() {
  const Fidelity fidelity = Fidelity::from_env(3);
  bench::banner("Figure 14", "mitigation effectiveness (DSRC)", fidelity);

  const phy::RangeTable ranges = phy::range_table(phy::AccessTechnology::kDsrc);

  std::printf("\nFig 14a — GF plausibility check (threshold %.0f m, extrapolating)\n",
              ranges.nlos_median_m);
  struct Setting {
    const char* label;
    double range_m;
  } settings[] = {
      {"wN attacker", ranges.nlos_worst_m},
      {"mN attacker", ranges.nlos_median_m},
      {"mL attacker", ranges.los_median_m},
  };
  for (const auto& s : settings) {
    HighwayConfig cfg;
    cfg.attack_range_m = s.range_m;
    const double plain = inter_arm(cfg, fidelity, /*attacked=*/true, /*mitigated=*/false);
    const double fixed = inter_arm(cfg, fidelity, /*attacked=*/true, /*mitigated=*/true);
    std::printf("  %-14s recv (attacked) = %5.3f -> %5.3f with check  (+%.1f pp)\n", s.label,
                plain, fixed, (fixed - plain) * 100.0);
  }
  {
    HighwayConfig cfg;
    cfg.attack_range_m = ranges.nlos_worst_m;  // geometry only; no attacker deployed
    const double plain = inter_arm(cfg, fidelity, /*attacked=*/false, /*mitigated=*/false);
    const double fixed = inter_arm(cfg, fidelity, /*attacked=*/false, /*mitigated=*/true);
    std::printf("  %-14s recv (no attack) = %5.3f -> %5.3f with check  (+%.1f pp)\n",
                "attacker-free", plain, fixed, (fixed - plain) * 100.0);
  }

  std::printf("\nFig 14b — CBF RHL-drop check (threshold 3)\n");
  struct IntraSetting {
    const char* label;
    double range_m;
  } intra_settings[] = {
      {"wN attacker", ranges.nlos_worst_m},
      {"mN attacker", ranges.nlos_median_m},
  };
  for (const auto& s : intra_settings) {
    HighwayConfig cfg;
    cfg.attack_range_m = s.range_m;
    const double af = intra_arm(cfg, fidelity, /*attacked=*/false, /*mitigated=*/false);
    const double plain = intra_arm(cfg, fidelity, /*attacked=*/true, /*mitigated=*/false);
    const double fixed = intra_arm(cfg, fidelity, /*attacked=*/true, /*mitigated=*/true);
    std::printf("  %-14s recv: af = %5.3f, attacked = %5.3f, attacked+check = %5.3f\n",
                s.label, af, plain, fixed);
  }

  std::printf("\npaper reference: 14a recovers +53.7%% / +61.6%% / +53.4%% (wN/mN/mL) and\n"
              "+39.9%% attacker-free (to 94.3%%); 14b realigns attacked reception with the\n"
              "attacker-free curves.\n");
  return 0;
}

// Micro-benchmarks (google-benchmark) for the hot paths of the stack:
// codec, signing/verification, location table, GF selection, CBF math,
// duplicate detection, event queue and medium delivery. These bound the
// simulator's throughput and document the cost of the security envelope.
//
// Besides the console table, the binary writes BENCH_micro.json (override
// the path with VGR_BENCH_JSON) with ns/op per kernel so the perf
// trajectory is tracked across PRs — compare the committed file against a
// fresh run before and after a change.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "vgr/gn/cbf.hpp"
#include "vgr/gn/greedy_forwarder.hpp"
#include "vgr/gn/location_table.hpp"
#include "vgr/gn/scf_buffer.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/net/duplicate_detector.hpp"
#include "vgr/phy/dcc.hpp"
#include "vgr/phy/mac.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"

namespace {

using namespace vgr;

net::Packet sample_gbc() {
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{42}};
  pv.position = {1234.0, 2.5};
  pv.speed_mps = 30.0;
  p.extended = net::GbcHeader{7, pv, geo::GeoArea::circle({4020.0, 2.5}, 30.0)};
  p.payload.assign(64, 0xAB);
  return p;
}

void BM_CodecEncode(benchmark::State& state) {
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::encode(p));
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const net::Bytes wire = net::Codec::encode(sample_gbc());
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::decode(wire));
}
BENCHMARK(BM_CodecDecode);

void BM_SignMessage(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(security::SecuredMessage::sign(p, signer));
}
BENCHMARK(BM_SignMessage);

// Cold verification: every call is a memo miss — the pool of distinct
// pre-signed messages is larger than the trust store's memo capacity and is
// cycled sequentially, so under LRU each entry is evicted before its next
// use. This is the price a router pays the first time a signed portion
// crosses its ingest.
void BM_VerifyMessageCold(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  std::vector<security::SecuredMessage> pool;
  const std::size_t pool_size = 10000;  // > kMemoCapacity (8192)
  pool.reserve(pool_size);
  net::Packet p = sample_gbc();
  for (std::size_t i = 0; i < pool_size; ++i) {
    p.gbc()->sequence_number = static_cast<net::SequenceNumber>(i);
    pool.push_back(security::SecuredMessage::sign(p, signer));
  }
  const auto trust = ca.trust_store();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool[i].verify(*trust));
    if (++i == pool_size) i = 0;
  }
}
BENCHMARK(BM_VerifyMessageCold);

// Warm verification: the same envelope re-verified — a replayed frame, a
// CBF duplicate, or the next hop of an RHL-decremented forward. Hits the
// verification memo; this is most of the per-receiver security cost in a
// dense flood.
void BM_VerifyMessageWarm(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const auto msg = security::SecuredMessage::sign(sample_gbc(), signer);
  const auto trust = ca.trust_store();
  benchmark::DoNotOptimize(msg.verify(*trust));  // prime the memo
  for (auto _ : state) benchmark::DoNotOptimize(msg.verify(*trust));
}
BENCHMARK(BM_VerifyMessageWarm);

// Arithmetic wire size (airtime path) vs. the encode it replaced — the
// encode cost is visible as BM_CodecEncode above.
void BM_WireSize(benchmark::State& state) {
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::wire_size(p));
}
BENCHMARK(BM_WireSize);

// Signed-portion encoding, cold: what sign() and the raw-ingest reassembly
// pay once per message.
void BM_SignedPortionCold(benchmark::State& state) {
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::encode_signed_portion(p));
}
BENCHMARK(BM_SignedPortionCold);

// Signed-portion access, warm: what every later consumer pays — forwarding
// copies, re-verification, the corruption path's wire rebuild.
void BM_SignedPortionWarm(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const auto msg = security::SecuredMessage::sign(sample_gbc(), signer);
  for (auto _ : state) benchmark::DoNotOptimize(msg.signed_portion());
}
BENCHMARK(BM_SignedPortionWarm);

void BM_LocationTableUpdate(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  net::LongPositionVector pv;
  std::uint64_t i = 0;
  for (auto _ : state) {
    pv.address = net::GnAddress::from_bits(i++ % state.range(0));
    pv.timestamp = now;
    table.update(pv, now, true);
  }
}
BENCHMARK(BM_LocationTableUpdate)->Arg(64)->Arg(512);

void BM_GfSelect(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  sim::Rng rng{1};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    net::LongPositionVector pv;
    pv.address = net::GnAddress::from_bits(static_cast<std::uint64_t>(i) + 1);
    pv.timestamp = now;
    pv.position = {rng.uniform(0.0, 4000.0), rng.uniform(-7.5, 7.5)};
    table.update(pv, now, true);
  }
  const net::GnAddress self = net::GnAddress::from_bits(0xFFFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gn::select_next_hop(table, self, {2000.0, 2.5}, {4020.0, 2.5}, now, {}));
  }
}
BENCHMARK(BM_GfSelect)->Arg(32)->Arg(256)->Arg(1024);

void BM_GfSelectWithPlausibility(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  sim::Rng rng{1};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    net::LongPositionVector pv;
    pv.address = net::GnAddress::from_bits(static_cast<std::uint64_t>(i) + 1);
    pv.timestamp = now;
    pv.position = {rng.uniform(0.0, 4000.0), rng.uniform(-7.5, 7.5)};
    pv.speed_mps = 30.0;
    table.update(pv, now, true);
  }
  gn::GfPolicy policy;
  policy.plausibility_check = true;
  const net::GnAddress self = net::GnAddress::from_bits(0xFFFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gn::select_next_hop(table, self, {2000.0, 2.5}, {4020.0, 2.5}, now, policy));
  }
}
BENCHMARK(BM_GfSelectWithPlausibility)->Arg(256);

void BM_CbfTimeout(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gn::cbf_timeout(d, sim::Duration::millis(1),
                                             sim::Duration::millis(100), 486.0));
    d += 1.0;
    if (d > 600.0) d = 0.0;
  }
}
BENCHMARK(BM_CbfTimeout);

void BM_DuplicateDetector(benchmark::State& state) {
  net::DuplicateDetector det;
  net::Packet p = sample_gbc();
  net::SequenceNumber sn = 0;
  for (auto _ : state) {
    p.gbc()->sequence_number = sn++;
    benchmark::DoNotOptimize(det.check_and_record(p));
  }
}
BENCHMARK(BM_DuplicateDetector);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    q.schedule_in(sim::Duration::micros(1), [] {});
    q.step();
  }
}
BENCHMARK(BM_EventQueueScheduleFire);

// Cohort retirement: schedule range(0) timers into one cohort, retire them
// all with a single cancel_cohort (the CBF contention-cancel pattern — a
// dense flood used to cancel ~100k contention timers one EventId at a
// time), then drain the queue so the lazily-skipped calendar entries are
// also paid for here and not carried into the next iteration. items/s
// counts cancelled timers.
void BM_EventQueueCancelCohort(benchmark::State& state) {
  sim::EventQueue q;
  const sim::CohortId cohort = q.make_cohort();
  const std::int64_t n = state.range(0);
  std::int64_t cancelled = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_in(sim::Duration::micros(1 + static_cast<std::uint64_t>(i)), cohort, [] {});
    }
    cancelled += static_cast<std::int64_t>(q.cancel_cohort(cohort));
    q.run_until(q.now() + sim::Duration::millis(1));
  }
  state.SetItemsProcessed(cancelled);
}
BENCHMARK(BM_EventQueueCancelCohort)->Arg(16)->Arg(256);

// Shared-envelope SCF enqueue: one signed message buffered by refcount —
// the path that used to deep-copy the SecuredMessage (and drop its wire
// and signed-portion caches) on every buffering hop. The buffer runs at a
// steady-state bound so head-drop eviction is part of the measured cost.
void BM_ScfEnqueueShared(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const security::SecuredMessagePtr msg = security::share(
      security::SecuredMessage::sign(sample_gbc(), signer));
  gn::ScfBuffer buffer{gn::ScfConfig{/*max_packets=*/256, /*max_bytes=*/0}};
  const auto expiry = sim::TimePoint::at(sim::Duration::seconds(60.0));
  for (auto _ : state) {
    buffer.push(msg, {4020.0, 2.5}, expiry);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScfEnqueueShared);

// One Medium::transmit plus delivery of every scheduled reception, on a
// road populated at the paper's density (one node per 15 m, DSRC NLoS range
// 486 m) so the in-range neighbourhood k stays constant as N grows. With
// the spatial index the per-frame cost is O(k); the `Scan` variant disables
// the index to expose the O(N) reference path the seed harness used.
//
// Placement is deterministic fixed-spacing, NOT uniform-random: a random
// draw clusters nodes unevenly, so the sender's actual in-range count k
// fluctuates with N and the /800 row used to come out *cheaper* per op
// than /200 (the old BENCH_micro.json inversion). With one node exactly
// every 15 m, k is pinned to min(n-1, 2*floor(486/15)) = 64 for n >= 66
// and the per-frame cost curve is monotone in N on the scan path and flat
// on the indexed path, as the model predicts.
void medium_broadcast(benchmark::State& state, bool spatial_index) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  medium.set_spatial_index(spatial_index);
  // Positions are static here, as they are between two traffic ticks of a
  // scenario run; kExplicit amortises the index rebuild the same way the
  // scenarios do (one rebuild per movement batch, not per frame).
  medium.set_index_mode(phy::IndexMode::kExplicit);
  const std::int64_t n = state.range(0);
  const std::int64_t sender_idx = n / 2;  // mid-road: full k on both sides
  phy::RadioId sender{};
  for (std::int64_t i = 0; i < n; ++i) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{static_cast<std::uint64_t>(i) + 1};
    const geo::Position pos{static_cast<double>(i) * 15.0, 2.5};
    cfg.position = [pos] { return pos; };
    cfg.tx_range_m = 486.0;
    const auto id = medium.add_node(std::move(cfg), [](const phy::Frame&, phy::RadioId) {});
    if (i == sender_idx) sender = id;
  }
  phy::Frame frame;
  frame.src = net::MacAddress{1};
  security::SecuredMessage msg;
  msg.set_packet(sample_gbc());
  frame.msg = security::share(std::move(msg));
  for (auto _ : state) {
    medium.transmit(sender, frame);
    events.run_until(events.now() + sim::Duration::seconds(1.0));
  }
  // items/s == frames/s through Medium::transmit.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MediumBroadcast(benchmark::State& state) { medium_broadcast(state, true); }
BENCHMARK(BM_MediumBroadcast)->Arg(50)->Arg(200)->Arg(800);

void BM_MediumBroadcastScan(benchmark::State& state) { medium_broadcast(state, false); }
BENCHMARK(BM_MediumBroadcastScan)->Arg(50)->Arg(200)->Arg(800);

// Per-receiver delivery cost: one broadcast into a dense cluster where
// every node is in range, items/s counted per *delivery* rather than per
// frame. This is the path the shared-frame refactor targets — one
// transmission used to deep-copy the secured message once per receiver.
void BM_MediumPerReceiverDelivery(benchmark::State& state) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  medium.set_index_mode(phy::IndexMode::kExplicit);
  const std::int64_t n = state.range(0);
  sim::Rng rng{5};
  phy::RadioId sender{};
  for (std::int64_t i = 0; i < n; ++i) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{static_cast<std::uint64_t>(i) + 1};
    const geo::Position pos{rng.uniform(0.0, 400.0), 2.5};  // all in range
    cfg.position = [pos] { return pos; };
    cfg.tx_range_m = 486.0;
    const auto id = medium.add_node(std::move(cfg), [](const phy::Frame&, phy::RadioId) {});
    if (i == 0) sender = id;
  }
  phy::Frame frame;
  frame.src = net::MacAddress{1};
  security::SecuredMessage msg;
  msg.set_packet(sample_gbc());
  frame.msg = security::share(std::move(msg));
  const std::uint64_t delivered_before = medium.frames_delivered();
  for (auto _ : state) {
    medium.transmit(sender, frame);
    events.run_until(events.now() + sim::Duration::seconds(1.0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(medium.frames_delivered() - delivered_before));
}
BENCHMARK(BM_MediumPerReceiverDelivery)->Arg(64)->Arg(256);

void BM_SpatialGridRebuild(benchmark::State& state) {
  sim::Rng rng{7};
  std::vector<phy::SpatialGrid::Entry> entries;
  const double road_length = static_cast<double>(state.range(0)) * 15.0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    entries.push_back({static_cast<std::uint32_t>(i) + 1,
                       {rng.uniform(0.0, road_length), rng.uniform(-7.5, 7.5)}});
  }
  phy::SpatialGrid grid;
  for (auto _ : state) {
    grid.rebuild(entries, 486.0);
    benchmark::DoNotOptimize(grid.cell_count());
  }
}
BENCHMARK(BM_SpatialGridRebuild)->Arg(200)->Arg(800);

// One full CSMA/CA service cycle under contention: two MAC-fronted nodes
// share the channel with a jammer transmitting every other airtime slot, so
// roughly half the sense events land busy and draw a backoff. Items/s is
// frames *through* the MAC (enqueue -> contention -> on the air), i.e. the
// per-frame overhead the contention layer adds to Medium::transmit.
void BM_MacContention(benchmark::State& state) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  std::array<phy::RadioId, 3> radios{};
  for (std::size_t i = 0; i < radios.size(); ++i) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{i + 1};
    const geo::Position pos{static_cast<double>(i) * 30.0, 2.5};
    cfg.position = [pos] { return pos; };
    cfg.tx_range_m = 486.0;
    radios[i] = medium.add_node(std::move(cfg), [](const phy::Frame&, phy::RadioId) {});
  }
  phy::MacConfig mc;
  mc.enabled = true;
  phy::Mac mac{events, medium, radios[0], events.make_cohort(), mc, phy::DccConfig{},
               sim::Rng{11}};
  phy::Frame frame;
  frame.src = net::MacAddress{1};
  security::SecuredMessage msg;
  msg.set_packet(sample_gbc());
  frame.msg = security::share(std::move(msg));
  // Measured airtime of one frame, to phase the jammer at half duty.
  medium.transmit(radios[2], frame);
  events.run_until(events.now() + sim::Duration::seconds(1.0));
  const sim::Duration airtime = medium.busy_time(radios[0]);
  for (auto _ : state) {
    medium.transmit(radios[2], frame);  // the contention the head senses
    mac.enqueue(frame, phy::MacAccessClass::kData);
    events.run_until(events.now() + airtime * 8.0);
    events.run_until(events.now() + sim::Duration::millis(20));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(mac.stats().transmitted));
}
BENCHMARK(BM_MacContention);

// The reactive DCC ladder's steady-state cost: one CBR sample through the
// sliding-window average and band lookup. This sits on the 100 ms sampling
// path of every MAC-enabled node, so it has to stay trivially cheap.
void BM_CbrWindow(benchmark::State& state) {
  phy::DccConfig cfg;
  cfg.enabled = true;
  cfg.window_samples = static_cast<std::size_t>(state.range(0));
  phy::Dcc dcc{cfg};
  double cbr = 0.0;
  for (auto _ : state) {
    cbr += 0.093;
    if (cbr > 1.0) cbr -= 1.0;  // sweep the whole ladder deterministically
    dcc.on_sample(cbr);
    benchmark::DoNotOptimize(dcc.toff());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CbrWindow)->Arg(10)->Arg(64);

/// Console output plus a flat JSON file: one record per benchmark run with
/// the per-iteration wall time (ns) and the items/s rate when the
/// benchmark reports one. The file is the cross-PR perf trajectory.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      Record rec;
      rec.name = run.benchmark_name();
      rec.real_time_ns = run.GetAdjustedRealTime();
      const auto it = run.counters.find("items_per_second");
      rec.items_per_second = it != run.counters.end() ? static_cast<double>(it->second) : -1.0;
      records_.push_back(std::move(rec));
    }
  }

  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.2f", r.name.c_str(),
                   r.real_time_ns);
      if (r.items_per_second >= 0.0) {
        std::fprintf(f, ", \"items_per_second\": %.1f", r.items_per_second);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string name;
    double real_time_ns{0.0};
    double items_per_second{-1.0};
  };
  std::vector<Record> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* out = std::getenv("VGR_BENCH_JSON");
  const std::string path = out != nullptr ? out : "BENCH_micro.json";
  const bool ok = reporter.write_json(path);
  benchmark::Shutdown();
  return ok ? 0 : 1;
}

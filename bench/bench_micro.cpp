// Micro-benchmarks (google-benchmark) for the hot paths of the stack:
// codec, signing/verification, location table, GF selection, CBF math,
// duplicate detection, event queue and medium delivery. These bound the
// simulator's throughput and document the cost of the security envelope.

#include <benchmark/benchmark.h>

#include "vgr/gn/cbf.hpp"
#include "vgr/gn/greedy_forwarder.hpp"
#include "vgr/gn/location_table.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/net/duplicate_detector.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"

namespace {

using namespace vgr;

net::Packet sample_gbc() {
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{42}};
  pv.position = {1234.0, 2.5};
  pv.speed_mps = 30.0;
  p.extended = net::GbcHeader{7, pv, geo::GeoArea::circle({4020.0, 2.5}, 30.0)};
  p.payload.assign(64, 0xAB);
  return p;
}

void BM_CodecEncode(benchmark::State& state) {
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::encode(p));
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const net::Bytes wire = net::Codec::encode(sample_gbc());
  for (auto _ : state) benchmark::DoNotOptimize(net::Codec::decode(wire));
}
BENCHMARK(BM_CodecDecode);

void BM_SignMessage(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const net::Packet p = sample_gbc();
  for (auto _ : state) benchmark::DoNotOptimize(security::SecuredMessage::sign(p, signer));
}
BENCHMARK(BM_SignMessage);

void BM_VerifyMessage(benchmark::State& state) {
  security::CertificateAuthority ca;
  const security::Signer signer{ca.enroll(
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{1}})};
  const auto msg = security::SecuredMessage::sign(sample_gbc(), signer);
  const auto trust = ca.trust_store();
  for (auto _ : state) benchmark::DoNotOptimize(msg.verify(*trust));
}
BENCHMARK(BM_VerifyMessage);

void BM_LocationTableUpdate(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  net::LongPositionVector pv;
  std::uint64_t i = 0;
  for (auto _ : state) {
    pv.address = net::GnAddress::from_bits(i++ % state.range(0));
    pv.timestamp = now;
    table.update(pv, now, true);
  }
}
BENCHMARK(BM_LocationTableUpdate)->Arg(64)->Arg(512);

void BM_GfSelect(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  sim::Rng rng{1};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    net::LongPositionVector pv;
    pv.address = net::GnAddress::from_bits(static_cast<std::uint64_t>(i) + 1);
    pv.timestamp = now;
    pv.position = {rng.uniform(0.0, 4000.0), rng.uniform(-7.5, 7.5)};
    table.update(pv, now, true);
  }
  const net::GnAddress self = net::GnAddress::from_bits(0xFFFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gn::select_next_hop(table, self, {2000.0, 2.5}, {4020.0, 2.5}, now, {}));
  }
}
BENCHMARK(BM_GfSelect)->Arg(32)->Arg(256)->Arg(1024);

void BM_GfSelectWithPlausibility(benchmark::State& state) {
  gn::LocationTable table{sim::Duration::seconds(20.0)};
  const auto now = sim::TimePoint::at(sim::Duration::seconds(1.0));
  sim::Rng rng{1};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    net::LongPositionVector pv;
    pv.address = net::GnAddress::from_bits(static_cast<std::uint64_t>(i) + 1);
    pv.timestamp = now;
    pv.position = {rng.uniform(0.0, 4000.0), rng.uniform(-7.5, 7.5)};
    pv.speed_mps = 30.0;
    table.update(pv, now, true);
  }
  gn::GfPolicy policy;
  policy.plausibility_check = true;
  const net::GnAddress self = net::GnAddress::from_bits(0xFFFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gn::select_next_hop(table, self, {2000.0, 2.5}, {4020.0, 2.5}, now, policy));
  }
}
BENCHMARK(BM_GfSelectWithPlausibility)->Arg(256);

void BM_CbfTimeout(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gn::cbf_timeout(d, sim::Duration::millis(1),
                                             sim::Duration::millis(100), 486.0));
    d += 1.0;
    if (d > 600.0) d = 0.0;
  }
}
BENCHMARK(BM_CbfTimeout);

void BM_DuplicateDetector(benchmark::State& state) {
  net::DuplicateDetector det;
  net::Packet p = sample_gbc();
  net::SequenceNumber sn = 0;
  for (auto _ : state) {
    p.gbc()->sequence_number = sn++;
    benchmark::DoNotOptimize(det.check_and_record(p));
  }
}
BENCHMARK(BM_DuplicateDetector);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    q.schedule_in(sim::Duration::micros(1), [] {});
    q.step();
  }
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_MediumBroadcast(benchmark::State& state) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  sim::Rng rng{3};
  phy::RadioId first{};
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{static_cast<std::uint64_t>(i) + 1};
    const geo::Position pos{rng.uniform(0.0, 4000.0), 2.5};
    cfg.position = [pos] { return pos; };
    cfg.tx_range_m = 486.0;
    const auto id = medium.add_node(std::move(cfg), [](const phy::Frame&, phy::RadioId) {});
    if (i == 0) first = id;
  }
  phy::Frame frame;
  frame.src = net::MacAddress{1};
  frame.msg.packet = sample_gbc();
  for (auto _ : state) {
    medium.transmit(first, frame);
    events.run_until(events.now() + sim::Duration::seconds(1.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MediumBroadcast)->Arg(64)->Arg(268);

}  // namespace

BENCHMARK_MAIN();

// Extension study (not a paper figure): how attack effectiveness depends on
// where along the 4 km segment the roadside attacker parks. The paper fixes
// the attacker at the centre; an attacker planning a deployment would sweep
// this. Centre placement maximizes the vulnerable-source population for the
// interception attack and gives the blocker the largest two-sided kill zone.

#include <cstdio>

#include "bench_util.hpp"

using namespace vgr;
using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

int main() {
  const Fidelity fidelity = Fidelity::from_env(2);
  bench::banner("Position sweep", "attacker placement along the segment (DSRC, mN range)",
                fidelity);

  const double mn = phy::range_table(phy::AccessTechnology::kDsrc).nlos_median_m;

  std::printf("\ninter-area interception vs attacker position\n");
  for (const double x : {600.0, 1200.0, 2000.0, 2800.0, 3400.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = mn;
    cfg.attacker_x_m = x;
    const AbResult r = run_inter_area_ab(cfg, fidelity);
    char label[48];
    std::snprintf(label, sizeof label, "attacker @ %4.0f m", x);
    bench::print_summary_row(label, r, "gamma");
  }

  std::printf("\nintra-area blockage vs attacker position\n");
  for (const double x : {600.0, 1200.0, 2000.0, 2800.0, 3400.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = mn;
    cfg.attacker_x_m = x;
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    char label[48];
    std::snprintf(label, sizeof label, "attacker @ %4.0f m", x);
    bench::print_summary_row(label, r, "lambda");
  }

  std::printf("\nexpectation: interception stays high anywhere (vulnerable packets are\n"
              "defined relative to the attacker), while blockage peaks mid-road where\n"
              "the kill zone bisects the flood and wanes near the ends.\n");
  return 0;
}

// Reproduces paper Table I (IDM parameters) and Table II (DSRC / C-V2X
// communication ranges), and validates that the implementation actually
// honours them: IDM steady-state behaviour against the analytic
// equilibrium, and effective over-the-air reception distance against the
// configured ranges.

#include <cmath>
#include <cstdio>

#include "vgr/phy/medium.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/traffic/idm.hpp"
#include "vgr/traffic/traffic_sim.hpp"

using namespace vgr;

namespace {

void table_one() {
  const traffic::IdmParameters p;
  std::printf("\nTable I — parameters used for IDM\n");
  std::printf("  %-28s %s\n", "Parameter", "Value");
  std::printf("  %-28s %.0f m/s\n", "Desired velocity", p.desired_velocity_mps);
  std::printf("  %-28s %.1f s\n", "Safe time headway", p.safe_time_headway_s);
  std::printf("  %-28s %.1f m/s^2\n", "Maximum acceleration", p.max_acceleration_mps2);
  std::printf("  %-28s %.1f m/s^2\n", "Comfortable deceleration",
              p.comfortable_deceleration_mps2);
  std::printf("  %-28s %.0f\n", "Acceleration exponent", p.acceleration_exponent);
  std::printf("  %-28s %.0f m\n", "Minimum distance", p.minimum_distance_m);

  // Validation: free-flow convergence to the desired velocity.
  traffic::TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = 0.0;
  traffic::TrafficSimulation sim{traffic::RoadSegment{10000.0, 1, false}, cfg};
  traffic::Vehicle& lone = sim.add_vehicle(traffic::Direction::kEastbound, 0, 0.0, 0.0);
  sim.set_entry_enabled(traffic::Direction::kEastbound, false);
  for (int i = 0; i < 1200; ++i) sim.tick();  // 120 s free road
  std::printf("  [check] free-flow speed after 120 s: %.2f m/s (expected -> %.0f)\n",
              lone.speed(), p.desired_velocity_mps);

  // Validation: steady car-following settles at the analytic equilibrium gap.
  traffic::TrafficSimulation sim2{traffic::RoadSegment{20000.0, 1, false}, cfg};
  sim2.set_entry_enabled(traffic::Direction::kEastbound, false);
  traffic::Vehicle& leader = sim2.add_vehicle(traffic::Direction::kEastbound, 0, 100.0, 20.0);
  traffic::Vehicle& follower = sim2.add_vehicle(traffic::Direction::kEastbound, 0, 50.0, 20.0);
  leader.set_forced_acceleration(0.0);  // leader cruises at 20 m/s
  for (int i = 0; i < 3000; ++i) sim2.tick();
  const double gap = leader.x() - leader.length() - follower.x();
  const double v = 20.0;
  const double s_star = 2.0 + v * 1.5;
  const double expected = s_star / std::sqrt(1.0 - std::pow(v / 30.0, 4.0));
  std::printf("  [check] car-following gap at 20 m/s: %.1f m (analytic equilibrium %.1f m)\n",
              gap, expected);
}

/// Binary-searches the maximum distance at which a frame from a node using
/// `range` is received.
double measured_reach(double range) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  const auto msg = security::share(security::SecuredMessage{});  // empty beacon-sized payload

  double lo = 0.0, hi = range * 2.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    bool received = false;
    phy::Medium::NodeConfig tx_cfg;
    tx_cfg.mac = net::MacAddress{1};
    tx_cfg.position = [] { return geo::Position{0.0, 0.0}; };
    tx_cfg.tx_range_m = range;
    const auto tx = medium.add_node(std::move(tx_cfg), [](const phy::Frame&, phy::RadioId) {});
    phy::Medium::NodeConfig rx_cfg;
    rx_cfg.mac = net::MacAddress{2};
    rx_cfg.position = [mid] { return geo::Position{mid, 0.0}; };
    rx_cfg.tx_range_m = range;
    const auto rx = medium.add_node(std::move(rx_cfg),
                                    [&](const phy::Frame&, phy::RadioId) { received = true; });
    phy::Frame f;
    f.src = net::MacAddress{1};
    f.msg = msg;  // shared envelope: per-probe frame shares one message
    medium.transmit(tx, f);
    events.run_until(events.now() + sim::Duration::seconds(1.0));
    medium.remove_node(tx);
    medium.remove_node(rx);
    if (received) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void table_two() {
  std::printf("\nTable II — communication ranges used for DSRC and C-V2X (Utah DOT field "
              "tests)\n");
  std::printf("  %-16s %-10s %-10s\n", "Comm. range", "DSRC", "C-V2X");
  const auto dsrc = phy::range_table(phy::AccessTechnology::kDsrc);
  const auto cv2x = phy::range_table(phy::AccessTechnology::kCv2x);
  std::printf("  %-16s %-10.0f %-10.0f\n", "LoS (median)", dsrc.los_median_m,
              cv2x.los_median_m);
  std::printf("  %-16s %-10.0f %-10.0f\n", "NLoS (median)", dsrc.nlos_median_m,
              cv2x.nlos_median_m);
  std::printf("  %-16s %-10.0f %-10.0f\n", "NLoS (worst)", dsrc.nlos_worst_m,
              cv2x.nlos_worst_m);

  for (const double r : {dsrc.nlos_worst_m, dsrc.nlos_median_m, dsrc.los_median_m}) {
    std::printf("  [check] configured range %7.0f m -> measured reach %7.1f m\n", r,
                measured_reach(r));
  }
  std::printf("  [check] DSRC airtime of a 200 B frame: %.0f us (6 Mb/s)\n",
              phy::airtime(phy::AccessTechnology::kDsrc, 200).to_seconds() * 1e6);
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Tables I & II — configuration constants + implementation validation\n");
  std::printf("==========================================================================\n");
  table_one();
  table_two();
  return 0;
}

// Reproduces paper Figure 6: the vulnerable-packet geometry for a roadside
// attacker at the centre of the 4,000 m segment. For each attack range the
// harness prints the fully covered area (both directions vulnerable) and
// the per-direction vulnerable source spans, then cross-checks the analytic
// spans against a brute-force scan of source positions.

#include <cstdio>

#include "vgr/phy/technology.hpp"
#include "vgr/scenario/vulnerability.hpp"

using namespace vgr;
using scenario::AttackGeometry;

namespace {

void report(const char* label, double attack_range, double vehicle_range, double road_len) {
  const AttackGeometry g{road_len / 2.0, attack_range, vehicle_range};
  std::printf("\n%s: attacker @%.0f m, attack range %.0f m, vehicle range %.0f m\n", label,
              g.attacker_x, attack_range, vehicle_range);

  // Brute-force the spans to validate the closed forms.
  double east_max = -1.0, west_min = road_len + 1.0;
  double covered_lo = road_len + 1.0, covered_hi = -1.0;
  int vulnerable_sources = 0, total = 0;
  for (double x = 0.0; x <= road_len; x += 1.0) {
    ++total;
    const bool e = g.eastbound_vulnerable(x);
    const bool w = g.westbound_vulnerable(x);
    if (e) east_max = x;
    if (w && x < west_min) west_min = x;
    if (e && w) {
      covered_lo = std::min(covered_lo, x);
      covered_hi = std::max(covered_hi, x);
    }
    if (e || w) ++vulnerable_sources;
  }

  std::printf("  eastbound-vulnerable sources: [0, %.0f] m\n", east_max);
  std::printf("  westbound-vulnerable sources: [%.0f, %.0f] m\n", west_min, road_len);
  if (const auto iv = g.fully_covered()) {
    std::printf("  fully covered area: [%.0f, %.0f] m (width %.0f m; scan: [%.0f, %.0f])\n",
                iv->first, iv->second, iv->second - iv->first, covered_lo, covered_hi);
  } else {
    std::printf("  fully covered area: none (attack range below vehicle range)\n");
  }
  std::printf("  vulnerable sources: %.1f%% of the road\n",
              100.0 * vulnerable_sources / total);
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Figure 6 — vulnerable-packet geometry (attacker at road centre)\n");
  std::printf("==========================================================================\n");

  const auto dsrc = phy::range_table(phy::AccessTechnology::kDsrc);
  report("DSRC wN", dsrc.nlos_worst_m, dsrc.nlos_median_m, 4000.0);
  report("DSRC mN", dsrc.nlos_median_m, dsrc.nlos_median_m, 4000.0);
  report("DSRC 500 m (paper's intra optimum)", 500.0, dsrc.nlos_median_m, 4000.0);
  report("DSRC mL", dsrc.los_median_m, dsrc.nlos_median_m, 4000.0);
  const auto cv2x = phy::range_table(phy::AccessTechnology::kCv2x);
  report("C-V2X mL", cv2x.los_median_m, cv2x.nlos_median_m, 4000.0);

  std::printf("\npaper reference: the 500 m attacker's fully covered area is\n"
              "(500 - 486) * 2 = 28 m wide; at mL range nearly every source is vulnerable\n"
              "in both directions.\n");
  return 0;
}

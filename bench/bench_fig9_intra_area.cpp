// Reproduces paper Figure 9: effectiveness of the intra-area blockage
// attack — (a) DSRC / (b) C-V2X attack-range sweeps including the paper's
// 500 m optimum, (c) LocTE TTL sweep (no effect expected), (d) density
// sweep, (e) road directions — plus the source-location split (fully
// covered area vs elsewhere) reported in §IV-A.

#include <cstdio>

#include "bench_util.hpp"
#include "vgr/scenario/highway.hpp"

using namespace vgr;
using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

namespace {

void range_sweep(phy::AccessTechnology tech, const char* name, const Fidelity& fidelity) {
  const phy::RangeTable ranges = phy::range_table(tech);
  struct Setting {
    const char* label;
    const char* key;
    double range_m;
  } settings[] = {
      {"wN (worst NLoS)", "wN", ranges.nlos_worst_m},
      {"mN (median NLoS)", "mN", ranges.nlos_median_m},
      {"500 m (optimum)", "500", 500.0},
      {"mL (median LoS)", "mL", ranges.los_median_m},
  };
  std::printf("\nFig 9%s — %s, attack range sweep\n", name, phy::name(tech));
  for (const auto& s : settings) {
    HighwayConfig cfg;
    cfg.tech = tech;
    cfg.attack_range_m = s.range_m;
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row(s.label, r, "lambda");
    bench::maybe_export(std::string{"fig9"} + name + "_" + s.key, r);
    if (bench::verbose()) bench::print_ab_series(r);
  }
}

}  // namespace

int main() {
  const Fidelity fidelity = Fidelity::from_env(3);
  bench::banner("Figure 9", "intra-area blockage attack effectiveness", fidelity);

  range_sweep(phy::AccessTechnology::kDsrc, "a", fidelity);
  range_sweep(phy::AccessTechnology::kCv2x, "b", fidelity);

  std::printf("\nFig 9c — DSRC, mN attacker, LocTE TTL sweep (CBF should not care)\n");
  for (const double ttl : {20.0, 10.0, 5.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_median_m;
    cfg.locte_ttl = sim::Duration::seconds(ttl);
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row("TTL " + std::to_string(static_cast<int>(ttl)) + " s", r,
                             "lambda");
  }

  std::printf("\nFig 9d — DSRC, mN attacker, inter-vehicle space sweep\n");
  for (const double spacing : {30.0, 100.0, 300.0}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_median_m;
    cfg.entry_spacing_m = spacing;
    cfg.prefill_spacing_m = spacing;
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row("i = " + std::to_string(static_cast<int>(spacing)) + " m", r,
                             "lambda");
  }

  std::printf("\nFig 9e — DSRC, mN attacker, road directions\n");
  for (const bool two_way : {false, true}) {
    HighwayConfig cfg;
    cfg.attack_range_m = phy::range_table(cfg.tech).nlos_median_m;
    cfg.two_way = two_way;
    const AbResult r = run_intra_area_ab(cfg, fidelity);
    bench::print_summary_row(two_way ? "two directions" : "single direction", r, "lambda");
  }

  // Source-location split (paper: 62.8% blockage for sources inside the
  // fully covered area vs 37.2% outside; 500 m attacker vs 486 m DSRC).
  std::printf("\nSource-location split — DSRC, 500 m attacker (fully covered width 28 m)\n");
  {
    HighwayConfig base;
    base.attack_range_m = 500.0;
    if (fidelity.sim_seconds > 0.0) {
      base.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
    }
    double hits[2][2] = {};   // [inside?][attacked?] reached
    double totals[2][2] = {}; // [inside?][attacked?] on-road
    std::uint64_t n_in = 0, n_out = 0;
    for (std::uint64_t run = 0; run < fidelity.runs * 3; ++run) {  // extra runs: 28 m is rare
      HighwayConfig a = base;
      a.seed = run + 1;
      a.attack = scenario::AttackKind::kNone;
      HighwayConfig b = base;
      b.seed = run + 1;
      b.attack = scenario::AttackKind::kIntraArea;
      const auto ra = scenario::HighwayScenario{a}.run_intra_area();
      const auto rb = scenario::HighwayScenario{b}.run_intra_area();
      for (const auto& fl : ra.floods) {
        const int in = fl.source_fully_covered ? 1 : 0;
        (in != 0 ? n_in : n_out) += 1;
        hits[in][0] += static_cast<double>(fl.reached);
        totals[in][0] += static_cast<double>(fl.total);
      }
      for (const auto& fl : rb.floods) {
        const int in = fl.source_fully_covered ? 1 : 0;
        hits[in][1] += static_cast<double>(fl.reached);
        totals[in][1] += static_cast<double>(fl.total);
      }
    }
    auto blockage = [&](int in) {
      const double af = totals[in][0] > 0.0 ? hits[in][0] / totals[in][0] : 0.0;
      const double atk = totals[in][1] > 0.0 ? hits[in][1] / totals[in][1] : 0.0;
      return af > 0.0 ? (1.0 - atk / af) * 100.0 : 0.0;
    };
    std::printf("  sources inside fully covered area: %llu floods, blockage = %.1f%%\n",
                static_cast<unsigned long long>(n_in), blockage(1));
    std::printf("  sources elsewhere:                 %llu floods, blockage = %.1f%%\n",
                static_cast<unsigned long long>(n_out), blockage(0));
  }

  std::printf("\npaper reference: lambda = 38.5%% (DSRC mN), 35.8%% (C-V2X mN); larger\n"
              "attack ranges *reduce* blockage (first-time receivers dominate); TTL and\n"
              "density have no effect; two directions ~38%%; source split 62.8%% / 37.2%%.\n");
  return 0;
}

# Plots the reception-rate CSV series exported by the benches.
#
# Usage:
#   VGR_CSV_DIR=out ./build/bench/bench_fig7_inter_area
#   gnuplot -e "csv='out/fig7a_wN.csv'; out='fig7a_wN.png'" tools/plot_csv.gnuplot
#
# Produces the paper-style plot: solid attacker-free line, dashed attacked
# line, reception rate over simulated time.

if (!exists("csv")) csv = "fig7a_wN.csv"
if (!exists("out")) out = csv . ".png"

set terminal pngcairo size 800,500 font "sans,11"
set output out
set datafile separator ","
set key top right
set xlabel "time (s)"
set ylabel "packet reception rate"
set yrange [0:1.05]
set grid

plot csv using 1:2 with lines lw 2 lc rgb "#2e7d32" title "attacker-free", \
     csv using 1:3 with lines lw 2 dt 2 lc rgb "#c62828" title "attacked"

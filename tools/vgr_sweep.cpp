// vgr_sweep — CLI front end for the crash-resilient sweep supervisor
// (docs/robustness.md, "Sweep supervisor").
//
//   vgr_sweep run    [--journal PATH] [--out PATH] [--loss L] [--churn L] [--flood L]
//   vgr_sweep resume [same options]
//   vgr_sweep status [--journal PATH]
//
// `run` executes the resilience study under the supervisor with a fresh
// journal (it refuses a journal that already holds records); `resume`
// continues a killed or drained study, re-using every journaled shard and
// executing only the missing ones; `status` decodes the journal read-only
// and summarizes progress. Point lists are comma-separated values, or
// "none" to skip an axis (defaults reproduce bench_resilience). Fidelity
// comes from the usual VGR_RUNS / VGR_SIM_SECONDS / VGR_THREADS knobs and
// supervision from VGR_SWEEP_* (the CLI forces VGR_SWEEP on).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vgr/sweep/resilience_sweep.hpp"

namespace {

using namespace vgr;

int usage() {
  std::fprintf(stderr,
               "usage: vgr_sweep <run|resume|status> [--journal PATH] [--out PATH]\n"
               "                 [--loss v,v,...|none] [--churn v,v,...|none]\n"
               "                 [--flood v,v,...|none]\n");
  return 2;
}

/// Parses "0,0.05,0.4" (or "none" -> empty); false on malformed input.
bool parse_levels(const char* arg, std::vector<double>& out) {
  out.clear();
  if (std::strcmp(arg, "none") == 0) return true;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) return false;
    out.push_back(v);
    p = end;
    if (*p == ',') ++p;
    else if (*p != '\0') return false;
  }
  return !out.empty();
}

int status(const std::string& journal_path) {
  std::size_t torn = 0;
  const std::vector<sweep::JournalRecord> records = sweep::Journal::scan(journal_path, &torn);
  std::size_t done = 0, quarantined = 0, degraded = 0;
  for (const sweep::JournalRecord& rec : records) {
    if (rec.status == "quarantined") {
      ++quarantined;
    } else {
      ++done;
    }
    if (rec.fidelity == "degraded") ++degraded;
  }
  std::printf("journal: %s\n", journal_path.c_str());
  std::printf("records: %zu done, %zu quarantined (%zu degraded)\n", done, quarantined,
              degraded);
  if (torn > 0) {
    std::printf("torn tail: %zu byte(s) — a resume will truncate them\n", torn);
  }
  for (const sweep::JournalRecord& rec : records) {
    std::printf("  %-12s %-8s attempts=%llu cause=%-6s %s\n", rec.status.c_str(),
                rec.fidelity.c_str(), static_cast<unsigned long long>(rec.attempts),
                rec.cause.c_str(), rec.shard.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode != "run" && mode != "resume" && mode != "status") return usage();

  sweep::SupervisorConfig config = sweep::SupervisorConfig::from_env();
  config.enabled = true;
  config.resume = mode == "resume";
  std::string out_path = "BENCH_resilience.json";
  if (const char* env = std::getenv("VGR_BENCH_JSON"); env != nullptr && *env != '\0') {
    out_path = env;
  }
  sweep::ResilienceSelection selection;

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();
    const char* value = argv[++i];
    if (flag == "--journal") {
      config.journal_path = value;
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--loss") {
      if (!parse_levels(value, selection.loss)) return usage();
    } else if (flag == "--churn") {
      if (!parse_levels(value, selection.churn)) return usage();
    } else if (flag == "--flood") {
      if (!parse_levels(value, selection.flood)) return usage();
    } else {
      return usage();
    }
  }

  if (mode == "status") return status(config.journal_path);

  scenario::Fidelity fidelity = scenario::Fidelity::from_env(/*default_runs=*/4);
  if (fidelity.sim_seconds <= 0.0) fidelity.sim_seconds = 20.0;

  sweep::Supervisor supervisor{config};
  if (!supervisor.ok()) return 1;
  return sweep::run_resilience_sweep(supervisor, fidelity, selection, out_path);
}

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

#include "vgr_lint.hpp"

// SARIF v2.1.0 writer. Hand-rolled on purpose: the schema subset vgr_lint
// needs (one run, static rule descriptors, file/line/message results) is
// small enough that a JSON library would be the only dependency this tool
// has. Everything user-controlled goes through escape().

namespace vgr::lint {
namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int rule_index(const std::string& id) {
  const auto& rules = rule_catalogue();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (id == rules[i].id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"vgr_lint\",\n"
      << "          \"informationUri\": \"docs/static-analysis.md\",\n"
      << "          \"rules\": [\n";
  const auto& rules = rule_catalogue();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    out << "            {\n"
        << "              \"id\": \"" << escape(r.id) << "\",\n"
        << "              \"name\": \"" << escape(r.name) << "\",\n"
        << "              \"shortDescription\": { \"text\": \"" << escape(r.summary) << "\" },\n"
        << "              \"fullDescription\": { \"text\": \"" << escape(r.detail) << "\" },\n"
        << "              \"defaultConfiguration\": { \"level\": \"error\" },\n"
        << "              \"properties\": { \"waiverTag\": \"" << escape(r.tag) << "\" }\n"
        << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << escape(f.rule) << "\",\n";
    if (const int idx = rule_index(f.rule); idx >= 0) {
      out << "          \"ruleIndex\": " << idx << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << escape(f.message) << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \"" << escape(f.file) << "\" },\n"
        << "                \"region\": { \"startLine\": " << (f.line > 0 ? f.line : 1) << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace vgr::lint

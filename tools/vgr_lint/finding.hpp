#pragma once

#include <string>
#include <vector>

namespace vgr::lint {

/// One rule violation (or rule-infrastructure problem, e.g. a bad waiver).
struct Finding {
  std::string file;     ///< project-relative path
  int line{0};          ///< 1-based
  std::string rule;     ///< "VGR001" ...
  std::string tag;      ///< waiver tag that would silence it, e.g. "ordered-ok"
  std::string message;  ///< human-readable description
};

/// Static metadata for one rule: the single source of truth behind
/// `--list-rules`, `--explain`, the SARIF rule descriptors and
/// docs/static-analysis.md (kept in parity by review + golden test).
struct RuleInfo {
  const char* id;       ///< "VGR009"
  const char* name;     ///< short kebab name, "module-layering"
  const char* tag;      ///< waiver tag, "layering-ok" ("" = not waivable)
  const char* summary;  ///< one line for --list-rules / SARIF shortDescription
  const char* detail;   ///< paragraph for --explain / SARIF fullDescription
};

/// All rules, ordered by id.
const std::vector<RuleInfo>& rule_catalogue();

}  // namespace vgr::lint

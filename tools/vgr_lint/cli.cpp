#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vgr_lint.hpp"

namespace vgr::lint {
namespace {

constexpr const char* kLayersRel = "tools/vgr_lint/layers.txt";

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Loads the layer manifest: an explicit --layers path must exist; the
/// default path is optional, but a tree that contains src/vgr modules
/// without a manifest gets a finding — deleting layers.txt must not
/// silently switch the layering rule off.
LayerManifest load_layers(const std::filesystem::path& root, const std::string& layers_arg,
                          const ProjectIndex& index, std::ostream& err, bool& io_error) {
  LayerManifest layers;
  const std::filesystem::path path =
      layers_arg.empty() ? root / kLayersRel : std::filesystem::path{layers_arg};
  if (std::filesystem::is_regular_file(path)) {
    const std::string rel =
        layers_arg.empty() ? kLayersRel : path.lexically_normal().generic_string();
    layers = parse_layers(read_file(path), rel);
    return layers;
  }
  if (!layers_arg.empty()) {
    err << "vgr_lint: --layers file '" << layers_arg << "' not found\n";
    io_error = true;
    return layers;
  }
  const bool has_vgr_modules = std::any_of(index.files.begin(), index.files.end(),
                                           [](const IndexedFile& f) { return !f.module.empty(); });
  if (has_vgr_modules) {
    layers.errors.push_back({kLayersRel, 1, "VGR009", "layering-ok",
                             "layers manifest missing — src/vgr modules are present but "
                             "tools/vgr_lint/layers.txt was not found, so the module DAG "
                             "cannot be enforced"});
  }
  return layers;
}

void print_findings(std::ostream& out, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": " << f.rule
        << (f.tag.empty() ? "" : " [" + f.tag + "]") << " " << f.message << "\n";
  }
}

int list_rules(std::ostream& out) {
  out << "vgr_lint rule catalogue (details: vgr_lint --explain VGR0NN)\n";
  for (const RuleInfo& r : rule_catalogue()) {
    out << r.id << "  " << r.name;
    for (std::size_t pad = std::string{r.name}.size(); pad < 16; ++pad) out << ' ';
    out << (r.tag[0] != '\0' ? r.tag : "(not waivable)");
    for (std::size_t pad = std::string{r.tag[0] != '\0' ? r.tag : "(not waivable)"}.size();
         pad < 18; ++pad) {
      out << ' ';
    }
    out << r.summary << "\n";
  }
  return 0;
}

int explain_rule(const std::string& id, std::ostream& out, std::ostream& err) {
  for (const RuleInfo& r : rule_catalogue()) {
    if (id == r.id) {
      out << r.id << " (" << r.name << ")\n"
          << "  fires on: " << r.summary << "\n"
          << "  waiver:   "
          << (r.tag[0] != '\0' ? "// vgr-lint: " + std::string{r.tag} + " (rationale)"
                               : "not waivable")
          << "\n\n"
          << r.detail << "\n";
      return 0;
    }
  }
  err << "vgr_lint: unknown rule '" << id << "' (see --list-rules)\n";
  return 2;
}

}  // namespace

int lint_tree(const std::filesystem::path& root, const std::vector<std::string>& dirs,
              std::ostream& out) {
  ProjectIndex index = build_project_index(root, dirs);
  bool io_error = false;
  std::ostringstream sink;
  const LayerManifest layers = load_layers(root, "", index, sink, io_error);
  const std::vector<Finding> findings = lint_project(index, layers);
  print_findings(out, findings);
  return static_cast<int>(findings.size());
}

int run_lint(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  std::filesystem::path root = ".";
  std::vector<std::string> dirs;
  std::string sarif_path;
  std::string layers_path;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (argv[i] == "--root") {
      if (i + 1 >= argv.size()) {
        err << "vgr_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (argv[i] == "--sarif") {
      if (i + 1 >= argv.size()) {
        err << "vgr_lint: --sarif needs an output path\n";
        return 2;
      }
      sarif_path = argv[++i];
    } else if (argv[i] == "--layers") {
      if (i + 1 >= argv.size()) {
        err << "vgr_lint: --layers needs a manifest path\n";
        return 2;
      }
      layers_path = argv[++i];
    } else if (argv[i] == "--list-rules") {
      return list_rules(out);
    } else if (argv[i] == "--explain") {
      if (i + 1 >= argv.size()) {
        err << "vgr_lint: --explain needs a rule id (e.g. VGR009)\n";
        return 2;
      }
      return explain_rule(argv[i + 1], out, err);
    } else if (argv[i] == "--help" || argv[i] == "-h") {
      out << "usage: vgr_lint [--root DIR] [--layers FILE] [--sarif FILE] [subdir...]\n"
             "       vgr_lint --list-rules | --explain VGR0NN\n"
             "Lints DIR/subdir for determinism/concurrency rule violations\n"
             "(default subdirs: src bench tools). Module layering is checked\n"
             "against tools/vgr_lint/layers.txt. --sarif additionally writes the\n"
             "findings as SARIF v2.1.0. Exit: 0 clean, 1 findings, 2 error.\n";
      return 0;
    } else if (argv[i].starts_with("-")) {
      err << "vgr_lint: unknown option '" << argv[i] << "'\n";
      return 2;
    } else {
      dirs.push_back(argv[i]);
    }
  }
  if (!std::filesystem::is_directory(root)) {
    err << "vgr_lint: root '" << root.string() << "' is not a directory\n";
    return 2;
  }
  if (dirs.empty()) dirs = {"src", "bench", "tools"};

  ProjectIndex index = build_project_index(root, dirs);
  bool io_error = false;
  const LayerManifest layers = load_layers(root, layers_path, index, err, io_error);
  if (io_error) return 2;

  const std::vector<Finding> findings = lint_project(index, layers);
  print_findings(out, findings);

  if (!sarif_path.empty()) {
    std::ofstream sarif{sarif_path, std::ios::binary};
    if (!sarif) {
      err << "vgr_lint: cannot write SARIF to '" << sarif_path << "'\n";
      return 2;
    }
    write_sarif(sarif, findings);
  }

  if (!findings.empty()) {
    out << "vgr_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  out << "vgr_lint: clean\n";
  return 0;
}

}  // namespace vgr::lint

#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "finding.hpp"

/// ProjectIndex — the whole-project parse pass under vgr_lint.
///
/// One tokenize pass over every lintable file produces, per file: the token
/// stream, the parsed waiver directives, and the quoted-include directives
/// resolved against the project tree. Rules then *query* the index — the
/// include graph for VGR009 layering, cross-TU symbol tables for VGR003 —
/// instead of re-harvesting sibling headers ad hoc per translation unit.
namespace vgr::lint {

enum class TokKind { kIdent, kNumber, kPunct, kHeader };

struct Tok {
  std::string text;
  int line{0};
  TokKind kind{TokKind::kPunct};
};

/// One parsed `vgr-lint:` directive. A line waiver covers its own line and
/// the line below; a region covers begin..end inclusive. `used` tracks, per
/// tag, whether the waiver actually suppressed a finding — the input to
/// VGR011 dead-waiver detection.
struct WaiverEntry {
  int line{0};        ///< directive line (where VGR011 reports deadness)
  bool is_region{false};
  int begin_line{0};  ///< first covered line
  int end_line{0};    ///< last covered line (inclusive; 1<<30 if unterminated)
  std::set<std::string> tags;
  std::map<std::string, bool> used;  ///< tag -> suppressed something
};

/// A quoted `#include "..."` directive (angle includes stay in the token
/// stream as TokKind::kHeader for VGR006).
struct IncludeDirective {
  int line{0};
  std::string spelled;   ///< text between the quotes, e.g. "vgr/gn/router.hpp"
  std::string resolved;  ///< project-relative path of the indexed target, or ""
};

struct Scan {
  std::vector<Tok> toks;
  std::vector<WaiverEntry> waivers;
  std::vector<IncludeDirective> includes;  ///< quoted includes, unresolved yet
  std::vector<Finding> waiver_errors;      ///< VGR007, reported unconditionally
};

/// Tokenizes one source file: strips comments/strings/char literals, routes
/// comments through the waiver parser, keeps `#include <...>` as a header
/// token and records `#include "..."` directives.
Scan tokenize(std::string_view src, std::string_view rel_path);

struct IndexedFile {
  std::string rel_path;  ///< project-relative, generic separators
  std::string module;    ///< "gn" for src/vgr/gn/..., "" outside src/vgr
  Scan scan;
};

/// The whole-project index: every lintable file under the requested dirs,
/// tokenized once, with quoted includes resolved to indexed files and the
/// per-file unordered-container symbol tables rules query.
struct ProjectIndex {
  std::filesystem::path root;
  std::vector<IndexedFile> files;             ///< sorted by rel_path
  std::map<std::string, std::size_t> by_path; ///< rel_path -> files index

  [[nodiscard]] const IndexedFile* find(std::string_view rel_path) const;
  [[nodiscard]] IndexedFile* find(std::string_view rel_path);

  /// Names declared with an unordered container type in `rel_path` itself
  /// (no include traversal).
  [[nodiscard]] const std::set<std::string>& own_unordered_names(
      const std::string& rel_path) const;

  /// Union of unordered-container names reachable from `rel_path` through
  /// the quoted-include graph (transitive) plus the sibling-header
  /// convention (<stem>.hpp/.h next to a .cpp, even when not included).
  [[nodiscard]] std::set<std::string> reachable_unordered_names(
      const std::string& rel_path) const;

  /// Transitive closure of resolved quoted includes from `rel_path`
  /// (excluding the file itself), sorted.
  [[nodiscard]] std::vector<std::string> reachable_includes(
      const std::string& rel_path) const;

 private:
  friend ProjectIndex build_project_index(const std::filesystem::path&,
                                          const std::vector<std::string>&);
  std::map<std::string, std::set<std::string>> unordered_names_;  // per file
};

/// Walks `dirs` (relative to `root`), tokenizes every .hpp/.h/.cpp/.cc file
/// and resolves quoted includes (includer-relative, then src/-rooted, then
/// root-relative — mirroring the build's include paths).
ProjectIndex build_project_index(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs);

/// `src/vgr/<module>/...` -> "<module>"; "" for anything else.
[[nodiscard]] std::string module_of(std::string_view rel_path);

/// Module named by a quoted include spelling `vgr/<module>/...`; "" if the
/// spelling does not target a vgr module.
[[nodiscard]] std::string included_module(std::string_view spelled);

/// The reviewed module-layering manifest (tools/vgr_lint/layers.txt):
/// `module: dep dep ...` per line, '#' comments. `allowed` holds the
/// permitted *direct* dependency set per module; parse problems (missing
/// colon, self-dependency, duplicate module, a cycle in the allowed graph)
/// surface as VGR009 findings against the manifest file itself.
struct LayerManifest {
  bool loaded{false};
  std::map<std::string, std::set<std::string>> allowed;
  std::vector<Finding> errors;
};

LayerManifest parse_layers(std::string_view content, std::string_view rel_path);

}  // namespace vgr::lint

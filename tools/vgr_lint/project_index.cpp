#include "project_index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace vgr::lint {
namespace {

const std::set<std::string>& known_tags() {
  static const std::set<std::string> tags{
      "wall-clock-ok", "rng-ok",        "ordered-ok",     "pointer-key-ok",
      "float-accum-ok", "thread-include-ok", "signal-safe-ok", "layering-ok",
      "rng-stream-ok", "dead-waiver-ok"};
  return tags;
}

std::string known_tags_joined() {
  std::string out;
  for (const std::string& t : known_tags()) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Parses one comment's text for a `vgr-lint:` waiver directive.
void parse_waiver(std::string_view comment, int line, std::string_view rel_path, Scan& scan,
                  std::vector<int>& open_regions) {
  const std::size_t at = comment.find("vgr-lint:");
  if (at == std::string_view::npos) return;
  // Only dedicated directive comments count: prose that merely *mentions*
  // vgr-lint (docs, this tool's own sources) must not parse as a waiver.
  for (std::size_t k = 0; k < at; ++k) {
    const char c = comment[k];
    if (c != ' ' && c != '\t' && c != '/' && c != '*' && c != '!' && c != '<') return;
  }
  std::string_view rest = comment.substr(at + 9);
  // Tags end at an opening paren (rationale) or end of comment.
  if (const std::size_t paren = rest.find('('); paren != std::string_view::npos) {
    rest = rest.substr(0, paren);
  }
  std::istringstream words{std::string{rest}};
  std::string word;
  bool begin = false, end = false;
  std::set<std::string> tags;
  while (words >> word) {
    while (!word.empty() && (word.back() == ',' || word.back() == '.')) word.pop_back();
    if (word.empty()) continue;
    if (word == "begin") {
      begin = true;
    } else if (word == "end") {
      end = true;
    } else if (known_tags().contains(word)) {
      tags.insert(word);
    } else {
      scan.waiver_errors.push_back({std::string{rel_path}, line, "VGR007", "",
                                    "unknown vgr-lint waiver tag '" + word +
                                        "' (known: " + known_tags_joined() + ")"});
    }
  }
  if (end) {
    if (open_regions.empty()) {
      scan.waiver_errors.push_back(
          {std::string{rel_path}, line, "VGR007", "", "'vgr-lint: end' without an open region"});
    } else {
      scan.waivers[static_cast<std::size_t>(open_regions.back())].end_line = line;
      open_regions.pop_back();
    }
    return;
  }
  if (begin) {
    if (tags.empty()) {
      scan.waiver_errors.push_back({std::string{rel_path}, line, "VGR007", "",
                                    "'vgr-lint: begin' without any waiver tag"});
      return;
    }
    WaiverEntry entry{line, true, line, 1 << 30, std::move(tags), {}};
    for (const std::string& t : entry.tags) entry.used[t] = false;
    scan.waivers.push_back(std::move(entry));
    open_regions.push_back(static_cast<int>(scan.waivers.size()) - 1);
    return;
  }
  if (!tags.empty()) {
    WaiverEntry entry{line, false, line, line + 1, std::move(tags), {}};
    for (const std::string& t : entry.tags) entry.used[t] = false;
    scan.waivers.push_back(std::move(entry));
  }
}

}  // namespace

Scan tokenize(std::string_view src, std::string_view rel_path) {
  Scan scan;
  std::vector<int> open_regions;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto at_line_start = [&](std::size_t pos) {
    while (pos > 0 && (src[pos - 1] == ' ' || src[pos - 1] == '\t')) --pos;
    return pos == 0 || src[pos - 1] == '\n';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t e = src.find('\n', start);
      if (e == std::string_view::npos) e = n;
      parse_waiver(src.substr(start, e - start), line, rel_path, scan, open_regions);
      i = e;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i + 2;
      std::size_t e = src.find("*/", start);
      if (e == std::string_view::npos) e = n;
      for (std::size_t k = start; k < e; ++k) {
        if (src[k] == '\n') ++line;
      }
      parse_waiver(src.substr(start, e - start), start_line, rel_path, scan, open_regions);
      i = e == n ? n : e + 2;
      continue;
    }
    // Raw string literal (possibly behind an encoding prefix consumed as an
    // identifier below — handle the common R"..." spelling here).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string close = ")" + std::string{src.substr(i + 2, d - (i + 2))} + "\"";
      std::size_t e = src.find(close, d);
      if (e == std::string_view::npos) e = n;
      for (std::size_t k = i; k < e && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, e + close.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    // Preprocessor directive: keep `#include <header>` as a token, record
    // `#include "header"` for the include graph, swallow the rest
    // (including backslash continuations).
    if (c == '#' && at_line_start(i)) {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::size_t w = j;
      while (w < n && ident_char(src[w])) ++w;
      const std::string_view directive = src.substr(j, w - j);
      if (directive == "include") {
        std::size_t h = w;
        while (h < n && (src[h] == ' ' || src[h] == '\t')) ++h;
        if (h < n && src[h] == '<') {
          std::size_t e = src.find('>', h);
          if (e != std::string_view::npos) {
            scan.toks.push_back({std::string{src.substr(h, e - h + 1)}, line, TokKind::kHeader});
          }
        } else if (h < n && src[h] == '"') {
          std::size_t e = src.find('"', h + 1);
          if (e != std::string_view::npos) {
            scan.includes.push_back({line, std::string{src.substr(h + 1, e - h - 1)}, {}});
          }
        }
      }
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(src[e])) ++e;
      scan.toks.push_back({std::string{src.substr(i, e - i)}, line, TokKind::kIdent});
      i = e;
      continue;
    }
    // Number (digits, hex, separators, exponents — precision is irrelevant,
    // it just must not split into identifier-like fragments).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < n && (ident_char(src[e]) || src[e] == '.' || src[e] == '\'')) ++e;
      scan.toks.push_back({std::string{src.substr(i, e - i)}, line, TokKind::kNumber});
      i = e;
      continue;
    }
    // Two-char operators the rules rely on.
    static const char* kTwo[] = {"::", "->", "+=", "-=", "*=", "/=", "<<", ">>",
                                 "<=", ">=", "==", "!=", "&&", "||", "++", "--"};
    bool matched = false;
    if (i + 1 < n) {
      const std::string two{src.substr(i, 2)};
      for (const char* op : kTwo) {
        if (two == op) {
          scan.toks.push_back({two, line, TokKind::kPunct});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    scan.toks.push_back({std::string(1, c), line, TokKind::kPunct});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Token helpers shared by the index and the rules.
// ---------------------------------------------------------------------------

const Tok* tok_at(const std::vector<Tok>& t, std::size_t i) {
  return i < t.size() ? &t[i] : nullptr;
}

bool foreign_qualified(const std::vector<Tok>& t, std::size_t i) {
  if (i == 0) return false;
  const std::string& prev = t[i - 1].text;
  if (prev == "." || prev == "->") return true;
  if (prev == "::") {
    if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") return true;
  }
  return false;
}

std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int angle = 0, paren = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "(" || s == "[") ++paren;
    if (s == ")" || s == "]") --paren;
    if (paren > 0) continue;
    if (s == "<") ++angle;
    if (s == ">") --angle;
    if (s == ">>") angle -= 2;
    if (angle <= 0) return j + 1;
    if (s == ";") break;  // statement ended: not a template argument list
  }
  return i;
}

std::set<std::string> unordered_decl_names(const std::vector<Tok>& t) {
  static const std::set<std::string> kUnorderedTypes{"unordered_map", "unordered_set",
                                                     "unordered_multimap", "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !kUnorderedTypes.contains(t[i].text)) continue;
    std::size_t j = skip_angles(t, i + 1);
    if (j == i + 1) continue;  // no template argument list: a bare mention
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent) names.insert(t[j].text);
  }
  return names;
}

// ---------------------------------------------------------------------------
// ProjectIndex.
// ---------------------------------------------------------------------------

std::string module_of(std::string_view rel_path) {
  constexpr std::string_view kPrefix = "src/vgr/";
  if (!rel_path.starts_with(kPrefix)) return {};
  const std::string_view rest = rel_path.substr(kPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string{rest.substr(0, slash)};
}

std::string included_module(std::string_view spelled) {
  constexpr std::string_view kPrefix = "vgr/";
  if (!spelled.starts_with(kPrefix)) return {};
  const std::string_view rest = spelled.substr(kPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string{rest.substr(0, slash)};
}

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string normalized_rel(const std::filesystem::path& root, const std::filesystem::path& p) {
  return p.lexically_normal().lexically_relative(root.lexically_normal()).generic_string();
}

}  // namespace

const IndexedFile* ProjectIndex::find(std::string_view rel_path) const {
  const auto it = by_path.find(std::string{rel_path});
  return it == by_path.end() ? nullptr : &files[it->second];
}

IndexedFile* ProjectIndex::find(std::string_view rel_path) {
  const auto it = by_path.find(std::string{rel_path});
  return it == by_path.end() ? nullptr : &files[it->second];
}

const std::set<std::string>& ProjectIndex::own_unordered_names(const std::string& rel_path) const {
  static const std::set<std::string> kEmpty;
  const auto it = unordered_names_.find(rel_path);
  return it == unordered_names_.end() ? kEmpty : it->second;
}

std::vector<std::string> ProjectIndex::reachable_includes(const std::string& rel_path) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{rel_path};
  while (!stack.empty()) {
    const std::string cur = std::move(stack.back());
    stack.pop_back();
    const IndexedFile* file = find(cur);
    if (file == nullptr) continue;
    for (const IncludeDirective& inc : file->scan.includes) {
      if (inc.resolved.empty() || seen.contains(inc.resolved)) continue;
      seen.insert(inc.resolved);
      stack.push_back(inc.resolved);
    }
  }
  seen.erase(rel_path);
  return {seen.begin(), seen.end()};
}

std::set<std::string> ProjectIndex::reachable_unordered_names(const std::string& rel_path) const {
  std::set<std::string> names = own_unordered_names(rel_path);
  for (const std::string& inc : reachable_includes(rel_path)) {
    const std::set<std::string>& more = own_unordered_names(inc);
    names.insert(more.begin(), more.end());
  }
  // Sibling-header convention: a .cpp inherits its header's members even if
  // the include spelling did not resolve (e.g. installed include roots).
  const std::filesystem::path p{rel_path};
  const std::string ext = p.extension().string();
  if (ext == ".cpp" || ext == ".cc") {
    for (const char* hext : {".hpp", ".h"}) {
      std::filesystem::path header = p;
      header.replace_extension(hext);
      const std::set<std::string>& more = own_unordered_names(header.generic_string());
      names.insert(more.begin(), more.end());
    }
  }
  return names;
}

ProjectIndex build_project_index(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs) {
  ProjectIndex index;
  index.root = root;

  std::vector<std::filesystem::path> paths;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable(entry.path())) paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  for (const std::filesystem::path& path : paths) {
    const std::string rel = normalized_rel(root, path);
    IndexedFile file;
    file.rel_path = rel;
    file.module = module_of(rel);
    file.scan = tokenize(read_file(path), rel);
    index.by_path.emplace(rel, index.files.size());
    index.files.push_back(std::move(file));
  }

  // Resolve quoted includes: includer-relative first (how the preprocessor
  // searches), then the src/ include root every vgr module uses, then the
  // project root (tools). Only files in the index resolve — unresolved
  // spellings keep resolved == "" and still carry layering information via
  // their `vgr/<module>/` prefix.
  for (IndexedFile& file : index.files) {
    const std::filesystem::path dir = std::filesystem::path{file.rel_path}.parent_path();
    for (IncludeDirective& inc : file.scan.includes) {
      for (const std::filesystem::path& candidate :
           {dir / inc.spelled, std::filesystem::path{"src"} / inc.spelled,
            std::filesystem::path{inc.spelled}}) {
        const std::string rel = candidate.lexically_normal().generic_string();
        if (index.by_path.contains(rel)) {
          inc.resolved = rel;
          break;
        }
      }
    }
    index.unordered_names_[file.rel_path] = unordered_decl_names(file.scan.toks);
  }
  return index;
}

// ---------------------------------------------------------------------------
// Layer manifest.
// ---------------------------------------------------------------------------

LayerManifest parse_layers(std::string_view content, std::string_view rel_path) {
  LayerManifest manifest;
  manifest.loaded = true;
  const std::string file{rel_path};

  int line_no = 0;
  std::istringstream lines{std::string{content}};
  std::string line;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    // Trim.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first, line.find_last_not_of(" \t\r") - first + 1);

    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      manifest.errors.push_back({file, line_no, "VGR009", "layering-ok",
                                 "layers.txt line is not 'module: dep dep ...'"});
      continue;
    }
    std::istringstream head{line.substr(0, colon)};
    std::string module;
    head >> module;
    std::string extra;
    if (module.empty() || (head >> extra)) {
      manifest.errors.push_back({file, line_no, "VGR009", "layering-ok",
                                 "layers.txt line must name exactly one module before ':'"});
      continue;
    }
    if (manifest.allowed.contains(module)) {
      manifest.errors.push_back({file, line_no, "VGR009", "layering-ok",
                                 "module '" + module + "' declared twice in layers.txt"});
      continue;
    }
    std::set<std::string> deps;
    std::istringstream tail{line.substr(colon + 1)};
    std::string dep;
    while (tail >> dep) {
      if (dep == module) {
        manifest.errors.push_back({file, line_no, "VGR009", "layering-ok",
                                   "module '" + module + "' lists itself as a dependency"});
        continue;
      }
      deps.insert(dep);
    }
    manifest.allowed.emplace(std::move(module), std::move(deps));
  }

  // The allowed graph must be a DAG: a cycle would let two modules grant
  // each other the edge the layering exists to forbid. Iterative DFS with
  // tri-state marks; one finding per cycle-closing module is enough.
  std::map<std::string, int> mark;  // 0 unvisited, 1 on stack, 2 done
  for (const auto& [start, unused] : manifest.allowed) {
    if (mark[start] != 0) continue;
    // Stack of (module, next-dep iterator position).
    std::vector<std::pair<std::string, std::set<std::string>::const_iterator>> stack;
    mark[start] = 1;
    stack.emplace_back(start, manifest.allowed.at(start).begin());
    while (!stack.empty()) {
      auto& [mod, it] = stack.back();
      const std::set<std::string>& deps = manifest.allowed.at(mod);
      if (it == deps.end()) {
        mark[mod] = 2;
        stack.pop_back();
        continue;
      }
      const std::string dep = *it++;
      if (!manifest.allowed.contains(dep)) continue;
      if (mark[dep] == 1) {
        manifest.errors.push_back({file, 0, "VGR009", "layering-ok",
                                   "layers.txt allowed-dependency graph has a cycle through '" +
                                       dep + "' and '" + mod + "'"});
        continue;
      }
      if (mark[dep] == 0) {
        mark[dep] = 1;
        stack.emplace_back(dep, manifest.allowed.at(dep).begin());
      }
    }
  }
  return manifest;
}

}  // namespace vgr::lint

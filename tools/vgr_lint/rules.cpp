#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "project_index.hpp"
#include "vgr_lint.hpp"

namespace vgr::lint {

// Token helpers defined in project_index.cpp (shared with the index build).
const Tok* tok_at(const std::vector<Tok>& t, std::size_t i);
bool foreign_qualified(const std::vector<Tok>& t, std::size_t i);
std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i);
std::set<std::string> unordered_decl_names(const std::vector<Tok>& t);

namespace {

// ---------------------------------------------------------------------------
// Rule driver. Waiver lookups mutate the scan's per-tag usage marks — the
// input to VGR011 dead-waiver detection, which runs after every other rule.
// ---------------------------------------------------------------------------

struct Linter {
  std::string_view rel_path;
  Scan& scan;
  std::vector<Finding> findings;

  [[nodiscard]] bool waived(int line, const std::string& tag) {
    bool hit = false;
    for (WaiverEntry& w : scan.waivers) {
      if (w.begin_line <= line && line <= w.end_line && w.tags.contains(tag)) {
        w.used[tag] = true;
        hit = true;
      }
    }
    return hit;
  }

  void report(int line, const char* rule, const char* tag, std::string message) {
    if (waived(line, tag)) return;
    findings.push_back({std::string{rel_path}, line, rule, tag, std::move(message)});
  }
};

bool path_is(std::string_view rel_path, std::initializer_list<std::string_view> allowed) {
  return std::any_of(allowed.begin(), allowed.end(),
                     [&](std::string_view a) { return rel_path == a; });
}

// ---------------------------------------------------------------------------
// VGR001 — wall-clock access outside the simulator's virtual clock.
// ---------------------------------------------------------------------------
void rule_wall_clock(Linter& lint) {
  if (path_is(lint.rel_path,
              {"src/vgr/sim/event_queue.cpp", "src/vgr/sim/event_queue.hpp",
               "src/vgr/sim/strip_executor.cpp", "src/vgr/sim/strip_executor.hpp"})) {
    // The per-run watchdog's wall deadline is the one sanctioned consumer of
    // real time inside the simulator (documented in event_queue.hpp); the
    // strip executor hosts the same watchdog plane-wide.
    return;
  }
  static const std::set<std::string> kClocks{"system_clock",  "steady_clock", "high_resolution_clock",
                                            "gettimeofday",   "localtime",    "gmtime",
                                            "timespec_get",   "clock_gettime"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kClocks.contains(t[i].text)) {
      lint.report(t[i].line, "VGR001", "wall-clock-ok",
                  "wall-clock source '" + t[i].text +
                      "' — simulation code must use sim::TimePoint (EventQueue::now)");
      continue;
    }
    if ((t[i].text == "time" || t[i].text == "clock") && tok_at(t, i + 1) &&
        t[i + 1].text == "(" && !foreign_qualified(t, i)) {
      lint.report(t[i].line, "VGR001", "wall-clock-ok",
                  "C library wall-clock call '" + t[i].text +
                      "()' — simulation code must use sim::TimePoint");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR002 — ambient randomness outside the seeded sim/random source.
// ---------------------------------------------------------------------------
void rule_ambient_rng(Linter& lint) {
  if (path_is(lint.rel_path, {"src/vgr/sim/random.cpp", "src/vgr/sim/random.hpp"})) return;
  static const std::set<std::string> kEngines{"random_device", "mt19937",      "mt19937_64",
                                              "default_random_engine", "minstd_rand",
                                              "minstd_rand0",  "ranlux24",     "ranlux48",
                                              "knuth_b"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kEngines.contains(t[i].text)) {
      lint.report(t[i].line, "VGR002", "rng-ok",
                  "ambient RNG '" + t[i].text +
                      "' — draw randomness from sim::Rng (seeded, replayable) instead");
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "srand") && tok_at(t, i + 1) &&
        t[i + 1].text == "(" && !foreign_qualified(t, i)) {
      lint.report(t[i].line, "VGR002", "rng-ok",
                  "C library RNG '" + t[i].text + "()' — use sim::Rng instead");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR003 — iteration over hash-ordered containers. The declared-name set
// comes from the ProjectIndex: the TU itself plus every header reachable
// through the quoted-include graph (plus the sibling-header convention).
// ---------------------------------------------------------------------------
void rule_unordered_iter(Linter& lint, const std::set<std::string>& names) {
  if (names.empty()) return;
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (t[i].text == "for" && tok_at(t, i + 1) && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      bool has_semi = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && t[j].text == ";") has_semi = true;
        if (depth == 1 && t[j].text == ":" && colon == 0) colon = j;
      }
      if (close != 0 && colon != 0 && !has_semi) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind == TokKind::kIdent && names.contains(t[j].text)) {
            lint.report(t[i].line, "VGR003", "ordered-ok",
                        "range-for over unordered container '" + t[j].text +
                            "' — hash order is not deterministic across builds; sort first "
                            "or waive with a rationale");
            break;
          }
        }
      }
    }
    // Explicit iterator walk: name.begin() / cbegin / rbegin.
    if (t[i].kind == TokKind::kIdent && names.contains(t[i].text) && tok_at(t, i + 3) &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" || t[i + 2].text == "rbegin" ||
         t[i + 2].text == "crbegin") &&
        t[i + 3].text == "(") {
      lint.report(t[i].line, "VGR003", "ordered-ok",
                  "iterator walk over unordered container '" + t[i].text +
                      "' — hash order is not deterministic across builds; sort first or "
                      "waive with a rationale");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR004 — ordered containers keyed by raw pointers.
// ---------------------------------------------------------------------------
void rule_pointer_key(Linter& lint) {
  static const std::set<std::string> kOrdered{"map", "set", "multimap", "multiset"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !kOrdered.contains(t[i].text)) continue;
    if (t[i - 1].text != "::" || t[i - 2].text != "std") continue;
    if (!tok_at(t, i + 1) || t[i + 1].text != "<") continue;
    // First template argument: tokens until a top-level ',' or the close.
    int angle = 1, paren = 0;
    std::size_t last = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (paren == 0) {
        if (s == "<") ++angle;
        if (s == ">") --angle;
        if (s == ">>") angle -= 2;
        if ((s == "," && angle == 1) || angle <= 0) break;
      }
      last = j;
    }
    if (last != 0 && t[last].text == "*") {
      lint.report(t[i].line, "VGR004", "pointer-key-ok",
                  "std::" + t[i].text +
                      " keyed by a raw pointer — iteration order follows allocation "
                      "addresses, which vary run to run");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR005 — floating-point accumulation in parallel/merge paths.
// ---------------------------------------------------------------------------
void rule_float_accum(Linter& lint) {
  const auto& t = lint.scan.toks;
  const bool parallel_path =
      lint.rel_path.starts_with("src/vgr/sim/thread_pool") ||
      std::any_of(t.begin(), t.end(), [](const Tok& tok) { return tok.text == "parallel_for"; });
  if (!parallel_path) return;
  std::set<std::string> fp_names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if ((t[i].text != "double" && t[i].text != "float") || t[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    fp_names.insert(t[i + 1].text);
    // Further declarators of the same statement: `double a = 0, b = 0;`.
    int depth = 0;
    for (std::size_t j = i + 2; j + 1 < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth < 0 || s == ";") break;
      if (depth == 0 && s == "," && t[j + 1].kind == TokKind::kIdent) {
        fp_names.insert(t[j + 1].text);
      }
    }
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && fp_names.contains(t[i].text) &&
        (t[i + 1].text == "+=" || t[i + 1].text == "-=")) {
      lint.report(t[i].line, "VGR005", "float-accum-ok",
                  "floating-point accumulation into '" + t[i].text +
                      "' in a parallel/merge path — summation order must be fixed (merge in "
                      "seed order) for bit-identical output");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR006 — threading primitives outside the pool.
// ---------------------------------------------------------------------------
void rule_thread_include(Linter& lint) {
  if (path_is(lint.rel_path,
              {"src/vgr/sim/thread_pool.cpp", "src/vgr/sim/thread_pool.hpp",
               // The strip executor IS the intra-run parallelism layer (ROADMAP
               // item 3): its barrier/mailbox protocol and the event queue's
               // region-tagged slot plumbing are the reviewed exceptions.
               "src/vgr/sim/strip_executor.cpp", "src/vgr/sim/strip_executor.hpp",
               "src/vgr/sim/event_queue.cpp", "src/vgr/sim/event_queue.hpp",
               // Strip-parallel shared state reviewed with the executor: the
               // medium's relaxed frame counters, the trust store's
               // conditional cache lock and the scenario's delivery-record
               // lock (all inert in serial runs).
               "src/vgr/phy/medium.hpp", "src/vgr/security/authority.hpp",
               "src/vgr/scenario/highway.hpp"})) {
    return;
  }
  static const std::set<std::string> kHeaders{
      "<thread>", "<mutex>",     "<shared_mutex>", "<condition_variable>", "<future>",
      "<atomic>", "<stop_token>", "<semaphore>",    "<latch>",              "<barrier>"};
  for (const Tok& tok : lint.scan.toks) {
    if (tok.kind == TokKind::kHeader && kHeaders.contains(tok.text)) {
      lint.report(tok.line, "VGR006", "thread-include-ok",
                  "#include " + tok.text +
                      " outside sim/thread_pool — the simulator is single-threaded by "
                      "design; run-level parallelism goes through ThreadPool");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR008 — non-async-signal-safe work inside signal handlers.
// ---------------------------------------------------------------------------

/// Names registered as signal handlers in this translation unit: the second
/// argument of `signal()` / `std::signal()` and anything assigned to a
/// `sa_handler` / `sa_sigaction` field. SIG_DFL/SIG_IGN dispositions and
/// saved-handler variables (non-identifier second arguments) drop out
/// naturally because only plain identifiers are harvested.
std::set<std::string> signal_handler_names(const std::vector<Tok>& t) {
  std::set<std::string> handlers;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "signal" && tok_at(t, i + 1) && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t comma = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (depth == 1 && t[j].text == "," && comma == 0) comma = j;
      }
      std::size_t j = comma + 1;
      if (comma != 0 && j < t.size() && t[j].text == "&") ++j;
      // Only an unqualified identifier followed by the closing paren is a
      // handler name; `cfg.handler`, ternaries and casts are skipped.
      if (comma != 0 && j < t.size() && t[j].kind == TokKind::kIdent && tok_at(t, j + 1) &&
          t[j + 1].text == ")") {
        handlers.insert(t[j].text);
      }
    }
    if ((t[i].text == "sa_handler" || t[i].text == "sa_sigaction") && tok_at(t, i + 1) &&
        t[i + 1].text == "=") {
      std::size_t j = i + 2;
      if (j < t.size() && t[j].text == "&") ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdent) handlers.insert(t[j].text);
    }
  }
  handlers.erase("SIG_DFL");
  handlers.erase("SIG_IGN");
  handlers.erase("SIG_ERR");
  return handlers;
}

void rule_signal_safety(Linter& lint) {
  const auto& t = lint.scan.toks;
  const std::set<std::string> handlers = signal_handler_names(t);
  if (handlers.empty()) return;

  // POSIX's async-signal-safe list is tiny; everything a simulator handler
  // might be tempted by — allocation, locks, stdio, unwinding — is off it.
  // The sanctioned handler body is `flag = 1;` on a volatile sig_atomic_t.
  static const std::set<std::string> kBanned{
      // allocation
      "new", "delete", "malloc", "calloc", "realloc", "free", "make_shared",
      "make_unique", "string", "vector", "to_string",
      // locking / synchronization
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable", "lock", "unlock",
      // stdio / iostreams
      "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf", "puts",
      "fputs", "putchar", "fwrite", "fread", "fopen", "fclose", "fflush", "cout",
      "cerr", "clog", "endl",
      // non-reentrant process control / unwinding
      "exit", "throw"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !handlers.contains(t[i].text)) continue;
    if (!tok_at(t, i + 1) || t[i + 1].text != "(") continue;
    // A definition: balanced parameter list directly followed by '{'.
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == 0 || !tok_at(t, close + 1) || t[close + 1].text != "{") continue;
    int braces = 0;
    for (std::size_t j = close + 1; j < t.size(); ++j) {
      if (t[j].text == "{") ++braces;
      if (t[j].text == "}" && --braces == 0) break;
      if (t[j].kind == TokKind::kIdent && kBanned.contains(t[j].text)) {
        lint.report(t[j].line, "VGR008", "signal-safe-ok",
                    "'" + t[j].text + "' in signal handler '" + t[i].text +
                        "' is not async-signal-safe — a handler may only set a "
                        "volatile sig_atomic_t flag");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VGR009 — module-layering: every quoted include crossing from one src/vgr
// module into another must be an edge the reviewed manifest allows.
// ---------------------------------------------------------------------------
void rule_module_layering(Linter& lint, const std::string& module, const Scan& scan,
                          const LayerManifest& layers) {
  if (!layers.loaded || module.empty()) return;
  const auto own = layers.allowed.find(module);
  for (const IncludeDirective& inc : scan.includes) {
    const std::string target = included_module(inc.spelled);
    if (target.empty() || target == module) continue;
    if (own == layers.allowed.end()) {
      lint.report(inc.line, "VGR009", "layering-ok",
                  "module '" + module +
                      "' is not declared in tools/vgr_lint/layers.txt — add it (and its "
                      "reviewed dependency list) before including '" + inc.spelled + "'");
      continue;
    }
    if (!own->second.contains(target)) {
      lint.report(inc.line, "VGR009", "layering-ok",
                  "#include \"" + inc.spelled + "\" — module '" + module +
                      "' may not depend on '" + target +
                      "' (allowed per tools/vgr_lint/layers.txt; sideways/upward edges "
                      "break the src/vgr dependency DAG)");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR010 — RNG stream discipline (taint-lite on sim::Rng).
// ---------------------------------------------------------------------------
void rule_rng_stream(Linter& lint) {
  if (path_is(lint.rel_path, {"src/vgr/sim/random.cpp", "src/vgr/sim/random.hpp"})) return;
  const auto& t = lint.scan.toks;
  static const std::set<std::string> kDraws{"next_u64", "uniform",     "uniform_int",
                                            "normal",   "exponential", "bernoulli"};

  struct Site {
    std::string name;
    int line;
  };
  std::vector<Site> forks, draws;
  std::set<std::string> shared;  // engines received/bound by non-const reference

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // `Rng & name` — a non-const reference binding. Followed by ';' it is a
    // stored member (or global): flagged outright. Followed by ',' / ')' /
    // '=' it is a parameter or a local alias: the engine belongs to someone
    // else, so draws through it are ambient draws on a shared stream.
    if (t[i].kind == TokKind::kIdent && t[i].text == "Rng" && t[i + 1].text == "&") {
      // `const` may sit before the namespace qualifier: const sim::Rng&.
      std::size_t q = i;
      while (q >= 2 && t[q - 1].text == "::" && t[q - 2].kind == TokKind::kIdent) q -= 2;
      const bool const_ref = q > 0 && t[q - 1].text == "const";
      const Tok* name = tok_at(t, i + 2);
      const Tok* after = tok_at(t, i + 3);
      if (!const_ref && name != nullptr && name->kind == TokKind::kIdent && after != nullptr) {
        if (after->text == ";") {
          lint.report(name->line, "VGR010", "rng-stream-ok",
                      "sim::Rng bound by non-const reference into stored member '" + name->text +
                          "' — components must own their stream (pass by value, fork a child)");
        } else if (after->text == "," || after->text == ")" || after->text == "=") {
          shared.insert(name->text);
        }
      }
    }
    // `name.fork(` / `name.method(` call sites.
    if (t[i].kind == TokKind::kIdent && (t[i + 1].text == "." || t[i + 1].text == "->")) {
      const Tok* method = tok_at(t, i + 2);
      const Tok* paren = tok_at(t, i + 3);
      if (method != nullptr && paren != nullptr && paren->text == "(") {
        if (method->text == "fork") {
          forks.push_back({t[i].text, t[i].line});
        } else if (kDraws.contains(method->text)) {
          draws.push_back({t[i].text, t[i].line});
        }
      }
    }
  }

  // (c) ambient draws on a shared stream: fork() is the only sanctioned use
  // of an engine you do not own.
  for (const Site& d : draws) {
    if (shared.contains(d.name)) {
      lint.report(d.line, "VGR010", "rng-stream-ok",
                  "draw on engine '" + d.name +
                      "' received by non-const reference — a shared stream may only be "
                      "forked at an established fork point, never drawn from ambiently");
    }
  }

  // (a) mixed-role engines: one finding per name, at the first fork site,
  // so the waiver (and its rationale) lives where the stream's role is set.
  std::set<std::string> reported;
  for (const Site& f : forks) {
    if (shared.contains(f.name) || reported.contains(f.name)) continue;
    const auto draw = std::find_if(draws.begin(), draws.end(),
                                   [&](const Site& d) { return d.name == f.name; });
    if (draw == draws.end()) continue;
    reported.insert(f.name);
    lint.report(f.line, "VGR010", "rng-stream-ok",
                "engine '" + f.name + "' is forked here but also drawn from (line " +
                    std::to_string(draw->line) +
                    ") — a stream must be a fork-only parent or a draw-only leaf; mixing "
                    "roles reseeds every later child when a draw is added or removed");
  }
}

// ---------------------------------------------------------------------------
// VGR011 — dead waivers: a tag that suppressed nothing is itself a finding.
// Runs after every other rule so the usage marks are complete. The
// dead-waiver-ok tag is exempt from deadness tracking (it waives VGR011
// itself, so a prophylactic waiver does not oscillate).
// ---------------------------------------------------------------------------
void rule_dead_waiver(Linter& lint) {
  // Snapshot first: reporting a dead waiver consults waived(), which may
  // mark dead-waiver-ok entries used while we iterate.
  struct Dead {
    int line;
    std::string tag;
  };
  std::vector<Dead> dead;
  for (const WaiverEntry& w : lint.scan.waivers) {
    for (const std::string& tag : w.tags) {
      if (tag == "dead-waiver-ok") continue;
      if (!w.used.at(tag)) dead.push_back({w.line, tag});
    }
  }
  for (const Dead& d : dead) {
    lint.report(d.line, "VGR011", "dead-waiver-ok",
                "waiver tag '" + d.tag +
                    "' suppresses no finding — delete the stale waiver (or mark it "
                    "dead-waiver-ok with a rationale if it is deliberately prophylactic)");
  }
}

std::vector<Finding> lint_one(IndexedFile& file, const std::set<std::string>& unordered_names,
                              const LayerManifest& layers) {
  Linter lint{file.rel_path, file.scan, {}};

  rule_wall_clock(lint);
  rule_ambient_rng(lint);
  rule_unordered_iter(lint, unordered_names);
  rule_pointer_key(lint);
  rule_float_accum(lint);
  rule_thread_include(lint);
  rule_signal_safety(lint);
  rule_module_layering(lint, file.module, file.scan, layers);
  rule_rng_stream(lint);
  rule_dead_waiver(lint);

  std::vector<Finding> out = std::move(lint.findings);
  out.insert(out.end(), file.scan.waiver_errors.begin(), file.scan.waiver_errors.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace

std::vector<Finding> lint_project(ProjectIndex& index, const LayerManifest& layers) {
  std::vector<Finding> all;
  for (IndexedFile& file : index.files) {
    const std::string ext = std::filesystem::path{file.rel_path}.extension().string();
    std::set<std::string> names = index.own_unordered_names(file.rel_path);
    if (ext == ".cpp" || ext == ".cc") {
      names = index.reachable_unordered_names(file.rel_path);
    }
    std::vector<Finding> found = lint_one(file, names, layers);
    all.insert(all.end(), found.begin(), found.end());
  }
  all.insert(all.end(), layers.errors.begin(), layers.errors.end());
  return all;
}

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 std::string_view sibling_header) {
  IndexedFile file;
  file.rel_path = std::string{rel_path};
  file.module = module_of(rel_path);
  file.scan = tokenize(content, rel_path);

  std::set<std::string> names = unordered_decl_names(file.scan.toks);
  if (!sibling_header.empty()) {
    const Scan header = tokenize(sibling_header, rel_path);
    const std::set<std::string> inherited = unordered_decl_names(header.toks);
    names.insert(inherited.begin(), inherited.end());
  }
  const LayerManifest no_layers;  // single-TU mode has no project manifest
  return lint_one(file, names, no_layers);
}

}  // namespace vgr::lint

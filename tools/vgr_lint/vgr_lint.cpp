#include "vgr_lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace vgr::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Comments, string literals and char literals are stripped (their
// contents can never violate a rule); comments are routed to the waiver
// parser. Preprocessor lines are swallowed except `#include <header>`, which
// becomes a single header-name token. A handful of two-char operators are
// kept atomic ("::", "->", "+=", ">>", ...) because the rules below lean on
// them for qualifier checks and template-angle balancing.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kHeader };

struct Tok {
  std::string text;
  int line{0};
  TokKind kind{TokKind::kPunct};
};

struct WaiverRegion {
  int begin_line{0};
  int end_line{0};  // inclusive; INT_MAX for unterminated regions
  std::set<std::string> tags;
};

struct Scan {
  std::vector<Tok> toks;
  std::map<int, std::set<std::string>> line_waivers;
  std::vector<WaiverRegion> regions;
  std::vector<Finding> waiver_errors;  // VGR007, reported unconditionally
};

const std::set<std::string>& known_tags() {
  static const std::set<std::string> tags{"wall-clock-ok",  "rng-ok",
                                          "ordered-ok",     "pointer-key-ok",
                                          "float-accum-ok", "thread-include-ok",
                                          "signal-safe-ok"};
  return tags;
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Parses one comment's text for a `vgr-lint:` waiver directive.
void parse_waiver(std::string_view comment, int line, std::string_view rel_path, Scan& scan,
                  std::vector<int>& open_regions) {
  const std::size_t at = comment.find("vgr-lint:");
  if (at == std::string_view::npos) return;
  // Only dedicated directive comments count: prose that merely *mentions*
  // vgr-lint (docs, this tool's own sources) must not parse as a waiver.
  for (std::size_t k = 0; k < at; ++k) {
    const char c = comment[k];
    if (c != ' ' && c != '\t' && c != '/' && c != '*' && c != '!' && c != '<') return;
  }
  std::string_view rest = comment.substr(at + 9);
  // Tags end at an opening paren (rationale) or end of comment.
  if (const std::size_t paren = rest.find('('); paren != std::string_view::npos) {
    rest = rest.substr(0, paren);
  }
  std::istringstream words{std::string{rest}};
  std::string word;
  bool begin = false, end = false;
  std::set<std::string> tags;
  while (words >> word) {
    while (!word.empty() && (word.back() == ',' || word.back() == '.')) word.pop_back();
    if (word.empty()) continue;
    if (word == "begin") {
      begin = true;
    } else if (word == "end") {
      end = true;
    } else if (known_tags().contains(word)) {
      tags.insert(word);
    } else {
      scan.waiver_errors.push_back({std::string{rel_path}, line, "VGR007", "",
                                    "unknown vgr-lint waiver tag '" + word +
                                        "' (known: wall-clock-ok rng-ok ordered-ok "
                                        "pointer-key-ok float-accum-ok thread-include-ok "
                                        "signal-safe-ok)"});
    }
  }
  if (end) {
    if (open_regions.empty()) {
      scan.waiver_errors.push_back(
          {std::string{rel_path}, line, "VGR007", "", "'vgr-lint: end' without an open region"});
    } else {
      scan.regions[static_cast<std::size_t>(open_regions.back())].end_line = line;
      open_regions.pop_back();
    }
    return;
  }
  if (begin) {
    if (tags.empty()) {
      scan.waiver_errors.push_back({std::string{rel_path}, line, "VGR007", "",
                                    "'vgr-lint: begin' without any waiver tag"});
      return;
    }
    scan.regions.push_back({line, 1 << 30, std::move(tags)});
    open_regions.push_back(static_cast<int>(scan.regions.size()) - 1);
    return;
  }
  if (!tags.empty()) scan.line_waivers[line].insert(tags.begin(), tags.end());
}

Scan tokenize(std::string_view src, std::string_view rel_path) {
  Scan scan;
  std::vector<int> open_regions;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto at_line_start = [&](std::size_t pos) {
    while (pos > 0 && (src[pos - 1] == ' ' || src[pos - 1] == '\t')) --pos;
    return pos == 0 || src[pos - 1] == '\n';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t e = src.find('\n', start);
      if (e == std::string_view::npos) e = n;
      parse_waiver(src.substr(start, e - start), line, rel_path, scan, open_regions);
      i = e;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i + 2;
      std::size_t e = src.find("*/", start);
      if (e == std::string_view::npos) e = n;
      for (std::size_t k = start; k < e; ++k) {
        if (src[k] == '\n') ++line;
      }
      parse_waiver(src.substr(start, e - start), start_line, rel_path, scan, open_regions);
      i = e == n ? n : e + 2;
      continue;
    }
    // Raw string literal (possibly behind an encoding prefix consumed as an
    // identifier below — handle the common R"..." spelling here).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string close = ")" + std::string{src.substr(i + 2, d - (i + 2))} + "\"";
      std::size_t e = src.find(close, d);
      if (e == std::string_view::npos) e = n;
      for (std::size_t k = i; k < e && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, e + close.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    // Preprocessor directive: keep `#include <header>`, swallow the rest
    // (including backslash continuations).
    if (c == '#' && at_line_start(i)) {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::size_t w = j;
      while (w < n && ident_char(src[w])) ++w;
      const std::string_view directive = src.substr(j, w - j);
      if (directive == "include") {
        std::size_t h = w;
        while (h < n && (src[h] == ' ' || src[h] == '\t')) ++h;
        if (h < n && src[h] == '<') {
          std::size_t e = src.find('>', h);
          if (e != std::string_view::npos) {
            scan.toks.push_back({std::string{src.substr(h, e - h + 1)}, line, TokKind::kHeader});
          }
        }
      }
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(src[e])) ++e;
      scan.toks.push_back({std::string{src.substr(i, e - i)}, line, TokKind::kIdent});
      i = e;
      continue;
    }
    // Number (digits, hex, separators, exponents — precision is irrelevant,
    // it just must not split into identifier-like fragments).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < n && (ident_char(src[e]) || src[e] == '.' || src[e] == '\'')) ++e;
      scan.toks.push_back({std::string{src.substr(i, e - i)}, line, TokKind::kNumber});
      i = e;
      continue;
    }
    // Two-char operators the rules rely on.
    static const char* kTwo[] = {"::", "->", "+=", "-=", "*=", "/=", "<<", ">>",
                                 "<=", ">=", "==", "!=", "&&", "||", "++", "--"};
    bool matched = false;
    if (i + 1 < n) {
      const std::string two{src.substr(i, 2)};
      for (const char* op : kTwo) {
        if (two == op) {
          scan.toks.push_back({two, line, TokKind::kPunct});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    scan.toks.push_back({std::string(1, c), line, TokKind::kPunct});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Rule helpers.
// ---------------------------------------------------------------------------

struct Linter {
  std::string_view rel_path;
  const Scan& scan;
  std::vector<Finding> findings;

  [[nodiscard]] bool waived(int line, const std::string& tag) const {
    for (int l : {line, line - 1}) {
      const auto it = scan.line_waivers.find(l);
      if (it != scan.line_waivers.end() && it->second.contains(tag)) return true;
    }
    return std::any_of(scan.regions.begin(), scan.regions.end(), [&](const WaiverRegion& r) {
      return r.begin_line <= line && line <= r.end_line && r.tags.contains(tag);
    });
  }

  void report(int line, const char* rule, const char* tag, std::string message) {
    if (waived(line, tag)) return;
    findings.push_back({std::string{rel_path}, line, rule, tag, std::move(message)});
  }
};

bool path_is(std::string_view rel_path, std::initializer_list<std::string_view> allowed) {
  return std::any_of(allowed.begin(), allowed.end(),
                     [&](std::string_view a) { return rel_path == a; });
}

const Tok* tok_at(const std::vector<Tok>& t, std::size_t i) {
  return i < t.size() ? &t[i] : nullptr;
}

/// True when the call at token i (an identifier) is qualified by something
/// other than `std` — a member call (`x.time(...)`) or a foreign namespace
/// (`sim::time(...)`). Those are not the C library functions the rule hunts.
bool foreign_qualified(const std::vector<Tok>& t, std::size_t i) {
  if (i == 0) return false;
  const std::string& prev = t[i - 1].text;
  if (prev == "." || prev == "->") return true;
  if (prev == "::") {
    if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") return true;
  }
  return false;
}

/// Skips a balanced template-argument list starting at the '<' at index i.
/// Returns the index just past the closing '>', or i on balance failure.
/// Angle tokens inside parentheses (e.g. `array<int, f(1)>`) are ignored.
std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int angle = 0, paren = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "(" || s == "[") ++paren;
    if (s == ")" || s == "]") --paren;
    if (paren > 0) continue;
    if (s == "<") ++angle;
    if (s == ">") --angle;
    if (s == ">>") angle -= 2;
    if (angle <= 0) return j + 1;
    if (s == ";") break;  // statement ended: not a template argument list
  }
  return i;
}

// ---------------------------------------------------------------------------
// VGR001 — wall-clock access outside the simulator's virtual clock.
// ---------------------------------------------------------------------------
void rule_wall_clock(Linter& lint) {
  if (path_is(lint.rel_path, {"src/vgr/sim/event_queue.cpp", "src/vgr/sim/event_queue.hpp"})) {
    // The per-run watchdog's wall deadline is the one sanctioned consumer of
    // real time inside the simulator (documented in event_queue.hpp).
    return;
  }
  static const std::set<std::string> kClocks{"system_clock",  "steady_clock", "high_resolution_clock",
                                            "gettimeofday",   "localtime",    "gmtime",
                                            "timespec_get",   "clock_gettime"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kClocks.contains(t[i].text)) {
      lint.report(t[i].line, "VGR001", "wall-clock-ok",
                  "wall-clock source '" + t[i].text +
                      "' — simulation code must use sim::TimePoint (EventQueue::now)");
      continue;
    }
    if ((t[i].text == "time" || t[i].text == "clock") && tok_at(t, i + 1) &&
        t[i + 1].text == "(" && !foreign_qualified(t, i)) {
      lint.report(t[i].line, "VGR001", "wall-clock-ok",
                  "C library wall-clock call '" + t[i].text +
                      "()' — simulation code must use sim::TimePoint");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR002 — ambient randomness outside the seeded sim/random source.
// ---------------------------------------------------------------------------
void rule_ambient_rng(Linter& lint) {
  if (path_is(lint.rel_path, {"src/vgr/sim/random.cpp", "src/vgr/sim/random.hpp"})) return;
  static const std::set<std::string> kEngines{"random_device", "mt19937",      "mt19937_64",
                                              "default_random_engine", "minstd_rand",
                                              "minstd_rand0",  "ranlux24",     "ranlux48",
                                              "knuth_b"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kEngines.contains(t[i].text)) {
      lint.report(t[i].line, "VGR002", "rng-ok",
                  "ambient RNG '" + t[i].text +
                      "' — draw randomness from sim::Rng (seeded, replayable) instead");
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "srand") && tok_at(t, i + 1) &&
        t[i + 1].text == "(" && !foreign_qualified(t, i)) {
      lint.report(t[i].line, "VGR002", "rng-ok",
                  "C library RNG '" + t[i].text + "()' — use sim::Rng instead");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR003 — iteration over hash-ordered containers.
// ---------------------------------------------------------------------------
static const std::set<std::string> kUnorderedTypes{"unordered_map", "unordered_set",
                                                   "unordered_multimap", "unordered_multiset"};

/// Collects names declared with an unordered container type:
/// `std::unordered_map<K, V> name` (members, locals, parameters).
std::set<std::string> unordered_decl_names(const std::vector<Tok>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !kUnorderedTypes.contains(t[i].text)) continue;
    std::size_t j = skip_angles(t, i + 1);
    if (j == i + 1) continue;  // no template argument list: a bare mention
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent) names.insert(t[j].text);
  }
  return names;
}

void rule_unordered_iter(Linter& lint, const std::set<std::string>& names) {
  if (names.empty()) return;
  const auto& t = lint.scan.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (t[i].text == "for" && tok_at(t, i + 1) && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      bool has_semi = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && t[j].text == ";") has_semi = true;
        if (depth == 1 && t[j].text == ":" && colon == 0) colon = j;
      }
      if (close != 0 && colon != 0 && !has_semi) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind == TokKind::kIdent && names.contains(t[j].text)) {
            lint.report(t[i].line, "VGR003", "ordered-ok",
                        "range-for over unordered container '" + t[j].text +
                            "' — hash order is not deterministic across builds; sort first "
                            "or waive with a rationale");
            break;
          }
        }
      }
    }
    // Explicit iterator walk: name.begin() / cbegin / rbegin.
    if (t[i].kind == TokKind::kIdent && names.contains(t[i].text) && tok_at(t, i + 3) &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" || t[i + 2].text == "rbegin" ||
         t[i + 2].text == "crbegin") &&
        t[i + 3].text == "(") {
      lint.report(t[i].line, "VGR003", "ordered-ok",
                  "iterator walk over unordered container '" + t[i].text +
                      "' — hash order is not deterministic across builds; sort first or "
                      "waive with a rationale");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR004 — ordered containers keyed by raw pointers.
// ---------------------------------------------------------------------------
void rule_pointer_key(Linter& lint) {
  static const std::set<std::string> kOrdered{"map", "set", "multimap", "multiset"};
  const auto& t = lint.scan.toks;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !kOrdered.contains(t[i].text)) continue;
    if (t[i - 1].text != "::" || t[i - 2].text != "std") continue;
    if (!tok_at(t, i + 1) || t[i + 1].text != "<") continue;
    // First template argument: tokens until a top-level ',' or the close.
    int angle = 1, paren = 0;
    std::size_t last = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (paren == 0) {
        if (s == "<") ++angle;
        if (s == ">") --angle;
        if (s == ">>") angle -= 2;
        if ((s == "," && angle == 1) || angle <= 0) break;
      }
      last = j;
    }
    if (last != 0 && t[last].text == "*") {
      lint.report(t[i].line, "VGR004", "pointer-key-ok",
                  "std::" + t[i].text +
                      " keyed by a raw pointer — iteration order follows allocation "
                      "addresses, which vary run to run");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR005 — floating-point accumulation in parallel/merge paths.
// ---------------------------------------------------------------------------
void rule_float_accum(Linter& lint) {
  const auto& t = lint.scan.toks;
  const bool parallel_path =
      lint.rel_path.starts_with("src/vgr/sim/thread_pool") ||
      std::any_of(t.begin(), t.end(), [](const Tok& tok) { return tok.text == "parallel_for"; });
  if (!parallel_path) return;
  std::set<std::string> fp_names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if ((t[i].text != "double" && t[i].text != "float") || t[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    fp_names.insert(t[i + 1].text);
    // Further declarators of the same statement: `double a = 0, b = 0;`.
    int depth = 0;
    for (std::size_t j = i + 2; j + 1 < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth < 0 || s == ";") break;
      if (depth == 0 && s == "," && t[j + 1].kind == TokKind::kIdent) {
        fp_names.insert(t[j + 1].text);
      }
    }
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && fp_names.contains(t[i].text) &&
        (t[i + 1].text == "+=" || t[i + 1].text == "-=")) {
      lint.report(t[i].line, "VGR005", "float-accum-ok",
                  "floating-point accumulation into '" + t[i].text +
                      "' in a parallel/merge path — summation order must be fixed (merge in "
                      "seed order) for bit-identical output");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR006 — threading primitives outside the pool.
// ---------------------------------------------------------------------------
void rule_thread_include(Linter& lint) {
  if (path_is(lint.rel_path, {"src/vgr/sim/thread_pool.cpp", "src/vgr/sim/thread_pool.hpp"})) {
    return;
  }
  static const std::set<std::string> kHeaders{
      "<thread>", "<mutex>",     "<shared_mutex>", "<condition_variable>", "<future>",
      "<atomic>", "<stop_token>", "<semaphore>",    "<latch>",              "<barrier>"};
  for (const Tok& tok : lint.scan.toks) {
    if (tok.kind == TokKind::kHeader && kHeaders.contains(tok.text)) {
      lint.report(tok.line, "VGR006", "thread-include-ok",
                  "#include " + tok.text +
                      " outside sim/thread_pool — the simulator is single-threaded by "
                      "design; run-level parallelism goes through ThreadPool");
    }
  }
}

// ---------------------------------------------------------------------------
// VGR008 — non-async-signal-safe work inside signal handlers.
// ---------------------------------------------------------------------------

/// Names registered as signal handlers in this translation unit: the second
/// argument of `signal()` / `std::signal()` and anything assigned to a
/// `sa_handler` / `sa_sigaction` field. SIG_DFL/SIG_IGN dispositions and
/// saved-handler variables (non-identifier second arguments) drop out
/// naturally because only plain identifiers are harvested.
std::set<std::string> signal_handler_names(const std::vector<Tok>& t) {
  std::set<std::string> handlers;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "signal" && tok_at(t, i + 1) && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t comma = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (depth == 1 && t[j].text == "," && comma == 0) comma = j;
      }
      std::size_t j = comma + 1;
      if (comma != 0 && j < t.size() && t[j].text == "&") ++j;
      // Only an unqualified identifier followed by the closing paren is a
      // handler name; `cfg.handler`, ternaries and casts are skipped.
      if (comma != 0 && j < t.size() && t[j].kind == TokKind::kIdent && tok_at(t, j + 1) &&
          t[j + 1].text == ")") {
        handlers.insert(t[j].text);
      }
    }
    if ((t[i].text == "sa_handler" || t[i].text == "sa_sigaction") && tok_at(t, i + 1) &&
        t[i + 1].text == "=") {
      std::size_t j = i + 2;
      if (j < t.size() && t[j].text == "&") ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdent) handlers.insert(t[j].text);
    }
  }
  handlers.erase("SIG_DFL");
  handlers.erase("SIG_IGN");
  handlers.erase("SIG_ERR");
  return handlers;
}

void rule_signal_safety(Linter& lint) {
  const auto& t = lint.scan.toks;
  const std::set<std::string> handlers = signal_handler_names(t);
  if (handlers.empty()) return;

  // POSIX's async-signal-safe list is tiny; everything a simulator handler
  // might be tempted by — allocation, locks, stdio, unwinding — is off it.
  // The sanctioned handler body is `flag = 1;` on a volatile sig_atomic_t.
  static const std::set<std::string> kBanned{
      // allocation
      "new", "delete", "malloc", "calloc", "realloc", "free", "make_shared",
      "make_unique", "string", "vector", "to_string",
      // locking / synchronization
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable", "lock", "unlock",
      // stdio / iostreams
      "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf", "puts",
      "fputs", "putchar", "fwrite", "fread", "fopen", "fclose", "fflush", "cout",
      "cerr", "clog", "endl",
      // non-reentrant process control / unwinding
      "exit", "throw"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !handlers.contains(t[i].text)) continue;
    if (!tok_at(t, i + 1) || t[i + 1].text != "(") continue;
    // A definition: balanced parameter list directly followed by '{'.
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == 0 || !tok_at(t, close + 1) || t[close + 1].text != "{") continue;
    int braces = 0;
    for (std::size_t j = close + 1; j < t.size(); ++j) {
      if (t[j].text == "{") ++braces;
      if (t[j].text == "}" && --braces == 0) break;
      if (t[j].kind == TokKind::kIdent && kBanned.contains(t[j].text)) {
        lint.report(t[j].line, "VGR008", "signal-safe-ok",
                    "'" + t[j].text + "' in signal handler '" + t[i].text +
                        "' is not async-signal-safe — a handler may only set a "
                        "volatile sig_atomic_t flag");
      }
    }
  }
}

}  // namespace

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 std::string_view sibling_header) {
  const Scan scan = tokenize(content, rel_path);
  Linter lint{rel_path, scan, {}};

  rule_wall_clock(lint);
  rule_ambient_rng(lint);

  std::set<std::string> names = unordered_decl_names(scan.toks);
  if (!sibling_header.empty()) {
    const Scan header = tokenize(sibling_header, rel_path);
    const std::set<std::string> inherited = unordered_decl_names(header.toks);
    names.insert(inherited.begin(), inherited.end());
  }
  rule_unordered_iter(lint, names);

  rule_pointer_key(lint);
  rule_float_accum(lint);
  rule_thread_include(lint);
  rule_signal_safety(lint);

  std::vector<Finding> out = std::move(lint.findings);
  out.insert(out.end(), scan.waiver_errors.begin(), scan.waiver_errors.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

int lint_tree(const std::filesystem::path& root, const std::vector<std::string>& dirs,
              std::ostream& out) {
  std::vector<std::filesystem::path> files;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable(entry.path())) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  int total = 0;
  for (const std::filesystem::path& file : files) {
    const std::string rel = file.lexically_relative(root).generic_string();
    std::string sibling;
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      for (const char* ext : {".hpp", ".h"}) {
        std::filesystem::path header = file;
        header.replace_extension(ext);
        if (std::filesystem::exists(header)) {
          sibling = read_file(header);
          break;
        }
      }
    }
    for (const Finding& f : lint_source(rel, read_file(file), sibling)) {
      out << f.file << ":" << f.line << ": " << f.rule
          << (f.tag.empty() ? "" : " [" + f.tag + "]") << " " << f.message << "\n";
      ++total;
    }
  }
  return total;
}

int run_lint(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  std::filesystem::path root = ".";
  std::vector<std::string> dirs;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (argv[i] == "--root") {
      if (i + 1 >= argv.size()) {
        err << "vgr_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (argv[i] == "--help" || argv[i] == "-h") {
      out << "usage: vgr_lint [--root DIR] [subdir...]\n"
             "Lints DIR/subdir for determinism/concurrency rule violations\n"
             "(default subdirs: src bench tools). Exit: 0 clean, 1 findings, 2 error.\n";
      return 0;
    } else if (argv[i].starts_with("-")) {
      err << "vgr_lint: unknown option '" << argv[i] << "'\n";
      return 2;
    } else {
      dirs.push_back(argv[i]);
    }
  }
  if (!std::filesystem::is_directory(root)) {
    err << "vgr_lint: root '" << root.string() << "' is not a directory\n";
    return 2;
  }
  if (dirs.empty()) dirs = {"src", "bench", "tools"};

  const int findings = lint_tree(root, dirs, out);
  if (findings > 0) {
    out << "vgr_lint: " << findings << " finding(s)\n";
    return 1;
  }
  out << "vgr_lint: clean\n";
  return 0;
}

}  // namespace vgr::lint

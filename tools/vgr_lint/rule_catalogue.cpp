#include "finding.hpp"

namespace vgr::lint {

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> rules{
      {"VGR001", "wall-clock", "wall-clock-ok",
       "wall-clock source outside the simulator's virtual clock",
       "Simulation logic must read time from sim::TimePoint (EventQueue::now). "
       "system_clock/steady_clock/time()/clock() and friends differ per run and per "
       "machine, so any code path that consults them cannot be bit-reproducible. "
       "Whitelisted: src/vgr/sim/event_queue.{hpp,cpp}, whose per-run watchdog wall "
       "deadline is the one sanctioned consumer of real time."},
      {"VGR002", "ambient-rng", "rng-ok",
       "ambient randomness outside the seeded sim/random source",
       "All randomness must come from sim::Rng — seeded, salted per subsystem, "
       "replayable. std::rand, std::random_device, mt19937 and the other <random> "
       "engines break replay and decouple the A/B arms' paired seeds. Whitelisted: "
       "src/vgr/sim/random.{hpp,cpp}, the one place engines may live."},
      {"VGR003", "unordered-iter", "ordered-ok",
       "iteration over a hash-ordered container",
       "Hash-table iteration order is unspecified and differs across libstdc++ "
       "versions, hash seeds and insertion histories. Member declarations are "
       "harvested from every header the translation unit reaches through the "
       "project include graph (plus the sibling-header convention), so iterating a "
       "member declared three includes away is still caught. A walk that feeds an "
       "output or a forwarding decision must sort what it collects, or be "
       "order-insensitive and say so in a waiver."},
      {"VGR004", "pointer-key", "pointer-key-ok",
       "std::map/std::set keyed by a raw pointer",
       "Ordered-container iteration over pointer keys follows allocation addresses, "
       "which vary run to run (ASLR, allocator state). Key by a stable ID instead."},
      {"VGR005", "float-accum", "float-accum-ok",
       "floating-point accumulation on a parallel/merge path",
       "FP addition is not associative; += into a float/double in a file that is "
       "part of a parallel/merge path (contains parallel_for or is sim/thread_pool) "
       "must have its summation order pinned — the harness merges in strict seed "
       "order — for bit-identical output across thread counts."},
      {"VGR006", "thread-include", "thread-include-ok",
       "threading primitives outside sim/thread_pool",
       "The simulator is single-threaded by design; a run owns its queue, medium "
       "and RNG. Run-level parallelism goes through sim/thread_pool — the only "
       "whitelisted user of <thread>, <mutex>, <atomic> and the other threading "
       "headers. Ad-hoc threading elsewhere is where data races come from."},
      {"VGR007", "bad-waiver", "",
       "malformed vgr-lint waiver directive",
       "A vgr-lint: directive with an unknown tag, a begin without tags, or an end "
       "without an open region. A typoed waiver (orderd-ok) would otherwise "
       "silently fail to silence — or rot into a comment that merely looks like a "
       "justification. Not waivable: fix the directive."},
      {"VGR008", "signal-safety", "signal-safe-ok",
       "non-async-signal-safe work inside a registered signal handler",
       "Almost nothing is async-signal-safe: a handler that allocates, locks or "
       "calls stdio can deadlock or corrupt the heap it interrupted. The sanctioned "
       "handler body assigns one volatile sig_atomic_t flag and returns. Functions "
       "registered via signal()/std::signal() or sa_handler/sa_sigaction "
       "assignments are scanned for allocation, locking, stdio, exit and throw."},
      {"VGR009", "module-layering", "layering-ok",
       "quoted #include that violates the src/vgr module DAG",
       "The module dependency DAG is declared in tools/vgr_lint/layers.txt "
       "(reviewed, checked in): sim and geo at the bottom, phy above sim, gn above "
       "phy/sim/geo/security, and attack/mitigation/scenario/sweep only at the "
       "top; tools/ and tests/ are exempt. Any #include \"vgr/<module>/...\" edge "
       "that points sideways or upward of the manifest is flagged, as is a module "
       "absent from the manifest and a manifest whose allowed-edge graph has a "
       "cycle. This is the static twin of the CMake link graph: CMake catches "
       "layering breaks only at link time and only for out-of-line symbols."},
      {"VGR010", "rng-stream", "rng-stream-ok",
       "RNG stream-discipline violation (fork/draw taint tracking)",
       "Determinism at any thread count requires every component to own its seeded "
       "stream: parents fork children at established fork points and then only "
       "fork; leaves only draw. Flagged, per translation unit: (a) an engine that "
       "is both fork()ed and drawn from (uniform/next_u64/... ) — adding or "
       "removing a draw silently reseeds every later child; (b) a sim::Rng bound "
       "by non-const reference into a stored member — two components sharing one "
       "stream desynchronize as soon as their draw interleaving changes; (c) draws "
       "on an engine received by non-const reference — a shared stream may only be "
       "forked, never drawn ambiently. Whitelisted: src/vgr/sim/random.{hpp,cpp}."},
      {"VGR011", "dead-waiver", "dead-waiver-ok",
       "a vgr-lint waiver that no longer suppresses any finding",
       "Rules tighten and code moves; a waiver whose tag suppresses nothing is a "
       "stale justification that hides the next real finding placed on its line. "
       "Each waiver tag (line or region) must suppress at least one finding in its "
       "span, or be deleted. A deliberately prophylactic waiver can carry "
       "dead-waiver-ok — which is itself exempt from deadness tracking."},
  };
  return rules;
}

}  // namespace vgr::lint

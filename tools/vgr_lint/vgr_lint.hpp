#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "finding.hpp"
#include "project_index.hpp"

/// vgr_lint — whole-project static analyzer for the determinism and
/// concurrency invariants the simulator promises (bit-identical outputs for
/// any VGR_THREADS, fault knobs free when off). No libclang: a small
/// hand-rolled tokenizer feeds a shared ProjectIndex (one parse pass over
/// the tree: token streams, waiver directives, a resolved quoted-include
/// graph and per-file symbol tables) that every rule queries. The tool stays
/// dependency-free and runs in CI before any build.
///
/// Rules (see docs/static-analysis.md and `vgr_lint --list-rules`):
///   VGR001 wall-clock       VGR002 ambient-rng      VGR003 unordered-iter
///   VGR004 pointer-key      VGR005 float-accum      VGR006 thread-include
///   VGR007 bad-waiver       VGR008 signal-safety    VGR009 module-layering
///   VGR010 rng-stream       VGR011 dead-waiver
///
/// Waivers: `// vgr-lint: <tag>-ok` (optionally with a rationale in
/// parentheses) on the violating line or the line directly above silences
/// that rule for that line. `// vgr-lint: begin <tag>-ok` ... `// vgr-lint:
/// end` silences a region. A waiver that silences nothing is itself a
/// finding (VGR011).
namespace vgr::lint {

/// Lints one translation unit in isolation (golden tests, editor
/// integrations). `sibling_header` (the matching .hpp of a .cpp, if any) is
/// scanned for member declarations only. Project-wide rules that need the
/// include graph or the layer manifest (VGR009) are inert in this mode.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                               std::string_view sibling_header = {});

/// Lints every file in the index against all rules, layering included.
/// Mutates the index's waiver-usage marks (VGR011 input). Manifest parse
/// errors are appended to the returned findings.
[[nodiscard]] std::vector<Finding> lint_project(ProjectIndex& index, const LayerManifest& layers);

/// Walks `dirs` (relative to `root`) building a ProjectIndex, loads the
/// layer manifest from `root/tools/vgr_lint/layers.txt` when present, and
/// prints findings as `path:line: RULE [tag] message` to `out`.
/// Returns the number of findings (0 == clean tree).
int lint_tree(const std::filesystem::path& root, const std::vector<std::string>& dirs,
              std::ostream& out);

/// Writes the findings as SARIF v2.1.0 (one run, rule descriptors from
/// rule_catalogue(), one result per finding with file/line/ruleId).
void write_sarif(std::ostream& out, const std::vector<Finding>& findings);

/// Entry point shared by main() and the golden tests: parses argv, runs the
/// project lint, prints a summary. Also serves the rule catalogue
/// (`--list-rules`, `--explain VGR0NN`) and machine-readable output
/// (`--sarif <path>`). Exit codes: 0 clean, 1 violations found, 2 usage or
/// I/O error.
int run_lint(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

}  // namespace vgr::lint

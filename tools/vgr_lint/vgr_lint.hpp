#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// vgr_lint — token-level static analyzer for the determinism and
/// concurrency invariants the simulator promises (bit-identical outputs for
/// any VGR_THREADS, fault knobs free when off). No libclang: a small
/// hand-rolled tokenizer is enough for the rule classes below, keeps the
/// tool dependency-free, and lets the lint run in CI before any build.
///
/// Rules (see docs/static-analysis.md for the full catalogue):
///   VGR001 wall-clock      — system_clock/steady_clock/time()/clock()
///                            outside the whitelisted sim/ watchdog files.
///   VGR002 ambient-rng     — std::rand/random_device/mt19937 & friends
///                            outside sim/random (the seeded xoshiro source).
///   VGR003 unordered-iter  — iteration over std::unordered_map/_set
///                            (hash-order nondeterminism) without a waiver.
///   VGR004 pointer-key     — std::map/std::set keyed by a raw pointer
///                            (address-order nondeterminism).
///   VGR005 float-accum     — float/double += / -= accumulation in a file
///                            that is part of a parallel/merge path.
///   VGR006 thread-include  — <thread>/<mutex>/<atomic>/... outside
///                            sim/thread_pool.
///   VGR007 bad-waiver      — a `vgr-lint:` comment with an unknown tag
///                            (catches typos that would silently un-waive).
///
/// Waivers: `// vgr-lint: <tag>-ok` (optionally with a rationale in
/// parentheses) on the violating line or the line directly above silences
/// that rule for that line. `// vgr-lint: begin <tag>-ok` ... `// vgr-lint:
/// end` silences a region. Tags: wall-clock-ok, rng-ok, ordered-ok,
/// pointer-key-ok, float-accum-ok, thread-include-ok.
namespace vgr::lint {

struct Finding {
  std::string file;     ///< project-relative path
  int line{0};          ///< 1-based
  std::string rule;     ///< "VGR001" ...
  std::string tag;      ///< waiver tag that would silence it, e.g. "ordered-ok"
  std::string message;  ///< human-readable description
};

/// Lints one translation unit. `rel_path` selects the per-rule file
/// whitelists; `sibling_header` (the matching .hpp of a .cpp, if any) is
/// scanned for member declarations only, so iteration in a .cpp over an
/// unordered member declared in its header is still caught.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                               std::string_view sibling_header = {});

/// Walks `dirs` (relative to `root`) linting every .hpp/.h/.cpp/.cc file,
/// printing findings as `path:line: RULE [tag] message` to `out`.
/// Returns the number of findings (0 == clean tree).
int lint_tree(const std::filesystem::path& root, const std::vector<std::string>& dirs,
              std::ostream& out);

/// Entry point shared by main() and the golden tests: parses argv, runs
/// lint_tree, prints a summary. Exit codes: 0 clean, 1 violations found,
/// 2 usage or I/O error.
int run_lint(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

}  // namespace vgr::lint

// Structure-aware mutation fuzzer for the GeoNetworking wire codec and the
// router's hardened ingest path (docs/robustness.md).
//
// Unlike a coverage-guided fuzzer this needs no external engine: it derives
// every input deterministically from a seed, so a failing iteration number
// reproduces exactly (`fuzz_codec <iters> <seed>`). The corpus is one valid
// encoded packet per extended-header type; mutations are the shapes a
// hostile or fault-ridden channel actually produces:
//
//   * truncation    — any prefix of a valid wire image
//   * bit flips     — 1..8 flipped bits (burst noise, the fault injector)
//   * splice        — prefix of one packet + suffix of another
//   * length tamper — 32-bit length prefixes overwritten with huge values
//                     (the classic allocation-bomb vector)
//   * garbage       — uniformly random bytes, arbitrary length
//   * live replay   — *valid* signed packets against the recovery-enabled
//                     router: unicasts/broadcasts toward an empty horizon
//                     park in the SCF buffer, fresh beacons flush it and arm
//                     retransmission, and a bounded number of event-queue
//                     steps fires the retry/expiry/backoff timers in situ
//
// Every mutant goes through Codec::decode; every successful decode must
// re-encode and decode back to an equal packet (round-trip invariant), and
// every mutant — decodable or not — is additionally fed to a live Router
// (SCF, bounded retransmission and the neighbour monitor all enabled) via
// its ingest path, which must neither crash nor trip a sanitizer. Exit code
// 0 means every invariant held for every iteration.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "vgr/gn/router.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/random.hpp"

namespace {

using namespace vgr;

net::LongPositionVector sample_lpv() {
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0xA1B2C3D4E5ULL}};
  pv.timestamp = sim::TimePoint::at(sim::Duration::seconds(12.5));
  pv.position = {1234.5, -7.25};
  pv.speed_mps = 29.7;
  pv.heading_rad = 1.25;
  return pv;
}

net::ShortPositionVector sample_spv() {
  net::ShortPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kRoadSideUnit, net::MacAddress{0xF00DULL}};
  pv.timestamp = sim::TimePoint::at(sim::Duration::seconds(1.0));
  pv.position = {-20.0, 2.5};
  return pv;
}

/// One valid packet per extended-header type — the fuzzer's seed corpus.
std::vector<net::Packet> build_corpus() {
  using HT = net::CommonHeader::HeaderType;
  const geo::GeoArea area = geo::GeoArea::circle({4020.0, 2.5}, 30.0);
  std::vector<net::Packet> corpus;
  const auto base = [](HT type, std::uint8_t hops) {
    net::Packet p;
    p.basic.remaining_hop_limit = hops;
    p.basic.lifetime = sim::Duration::seconds(3.0);
    p.common.type = type;
    p.common.max_hop_limit = hops;
    return p;
  };

  net::Packet p = base(HT::kBeacon, 1);
  p.extended = net::BeaconHeader{sample_lpv()};
  corpus.push_back(p);

  p = base(HT::kGeoBroadcast, 10);
  p.extended = net::GbcHeader{42, sample_lpv(), area};
  p.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  corpus.push_back(p);

  p = base(HT::kGeoUnicast, 10);
  p.extended = net::GucHeader{7, sample_lpv(), sample_spv()};
  p.payload = {0xDE, 0xAD};
  corpus.push_back(p);

  p = base(HT::kGeoAnycast, 10);
  p.extended = net::GacHeader{9, sample_lpv(), area};
  corpus.push_back(p);

  p = base(HT::kTopoBroadcast, 5);
  p.extended = net::TsbHeader{11, sample_lpv()};
  p.payload = net::Bytes(64, 0x5A);
  corpus.push_back(p);

  p = base(HT::kSingleHopBroadcast, 1);
  p.extended = net::ShbHeader{sample_lpv()};
  p.payload = net::Bytes(200, 0xCA);
  corpus.push_back(p);

  p = base(HT::kLsRequest, 10);
  p.extended = net::LsRequestHeader{3, sample_lpv(), sample_spv().address};
  corpus.push_back(p);

  p = base(HT::kLsReply, 10);
  p.extended = net::LsReplyHeader{4, sample_lpv(), sample_spv()};
  corpus.push_back(p);

  p = base(HT::kAck, 1);
  p.extended = net::AckHeader{sample_lpv(), sample_spv().address, 99};
  corpus.push_back(p);
  return corpus;
}

// The driver threads its one master stream through the mutator by design:
// the replayable artifact is the whole mutation *sequence* from the seed,
// and the fuzzer has no simulation-determinism surface of its own.
// vgr-lint: begin rng-stream-ok (single-owner driver stream, sequence is the replay key)
net::Bytes mutate(const std::vector<net::Bytes>& wires, sim::Rng& mut_rng) {
  const auto pick = [&]() -> const net::Bytes& {
    return wires[static_cast<std::size_t>(
        mut_rng.uniform_int(0, static_cast<std::int64_t>(wires.size()) - 1))];
  };
  net::Bytes out;
  switch (mut_rng.uniform_int(0, 4)) {
    case 0: {  // truncation: any prefix, including empty
      const net::Bytes& src = pick();
      out.assign(src.begin(),
                 src.begin() + mut_rng.uniform_int(0, static_cast<std::int64_t>(src.size())));
      break;
    }
    case 1: {  // bit flips
      out = pick();
      const std::int64_t flips = mut_rng.uniform_int(1, 8);
      for (std::int64_t i = 0; i < flips && !out.empty(); ++i) {
        const auto bit = static_cast<std::size_t>(
            mut_rng.uniform_int(0, static_cast<std::int64_t>(out.size()) * 8 - 1));
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2: {  // splice two corpus entries at independent cut points
      const net::Bytes& a = pick();
      const net::Bytes& b = pick();
      out.assign(a.begin(), a.begin() + mut_rng.uniform_int(0, static_cast<std::int64_t>(a.size())));
      const auto cut = mut_rng.uniform_int(0, static_cast<std::int64_t>(b.size()));
      out.insert(out.end(), b.begin() + cut, b.end());
      break;
    }
    case 3: {  // length tamper: overwrite an aligned-ish u32 with a huge value
      out = pick();
      if (out.size() >= 4) {
        const auto at = static_cast<std::size_t>(
            mut_rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 4));
        const std::uint32_t bomb =
            mut_rng.bernoulli(0.5) ? 0xFFFFFFFFu : static_cast<std::uint32_t>(mut_rng.next_u64());
        for (int i = 0; i < 4; ++i) {
          out[at + static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(bomb >> (8 * (3 - i)));
        }
      }
      break;
    }
    default: {  // pure garbage
      out.resize(static_cast<std::size_t>(mut_rng.uniform_int(0, 96)));
      for (auto& byte : out) byte = static_cast<std::uint8_t>(mut_rng.next_u64());
      break;
    }
  }
  return out;
}
// vgr-lint: end

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t iterations = argc > 1 ? std::atoll(argv[1]) : 100000;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 0x5EEDF00Du;

  const std::vector<net::Packet> corpus = build_corpus();
  std::vector<net::Bytes> wires;
  wires.reserve(corpus.size());
  for (const auto& p : corpus) {
    wires.push_back(net::Codec::encode(p));
    if (!net::Codec::decode(wires.back()).has_value()) {
      std::fprintf(stderr, "FATAL: pristine corpus entry failed to decode\n");
      return 1;
    }
  }

  // A live router on a real medium: mutants arrive through the same ingest
  // path a fault-injected delivery uses (Frame::raw), so decode failures,
  // semantic rejections and signature failures are all exercised in situ.
  // The full recovery layer is enabled so the replay strategy below drives
  // the SCF buffer, the retransmission state machine and the neighbour
  // monitor with hostile traffic interleaved.
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  security::CertificateAuthority ca;
  gn::StaticMobility mobility{geo::Position{0.0, 0.0}};
  const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0x77}};
  gn::RouterConfig router_config = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
  router_config.scf_enabled = true;
  router_config.scf_max_packets = 8;
  router_config.scf_max_bytes = 4096;
  router_config.retx_enabled = true;
  router_config.retx_max_attempts = 2;
  router_config.nbr_monitor = true;
  gn::Router router{events,
                    medium,
                    security::Signer{ca.enroll(addr)},
                    ca.trust_store(),
                    mobility,
                    router_config,
                    486.0,
                    sim::Rng{seed ^ 0x0123'4567'89AB'CDEFULL}};

  const net::GnAddress peer{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0x99}};
  security::Signer peer_signer{ca.enroll(peer)};
  phy::Frame frame;
  frame.src = peer.mac();
  frame.msg = security::share(security::SecuredMessage::sign(corpus[1], peer_signer));

  // Enrolled neighbours for the live-replay strategy: their fresh beacons
  // turn into location-table entries and flush the SCF buffer.
  std::vector<std::pair<net::GnAddress, security::Signer>> neighbors;
  for (std::uint64_t k = 0; k < 4; ++k) {
    const net::GnAddress a{net::GnAddress::StationType::kPassengerCar,
                           net::MacAddress{0x1111ULL + k}};
    neighbors.emplace_back(a, security::Signer{ca.enroll(a)});
  }

  sim::Rng rng{seed};
  std::int64_t decode_ok = 0;
  std::int64_t decode_rejected = 0;
  std::int64_t replayed = 0;
  std::uint16_t replay_sn = 1000;
  for (std::int64_t i = 0; i < iterations; ++i) {
    // Sixth strategy (~1/16 of iterations): craft a *valid* signed packet and
    // run it through the live router, then step the event queue so the SCF
    // retry, lifetime-expiry and retransmission timers fire amid the mutant
    // barrage. Unicasts/broadcasts toward the empty east horizon cannot be
    // forwarded and park in the SCF buffer; a fresh beacon from an enrolled
    // neighbour then flushes them and arms the per-hop retransmission timer.
    if (rng.uniform_int(0, 15) == 0) {
      ++replayed;
      const sim::TimePoint now = events.now();
      net::LongPositionVector so = sample_lpv();
      so.address = peer;
      so.timestamp = now;
      so.position = {-100.0, 0.0};
      net::Packet p;
      p.basic.remaining_hop_limit = 8;
      p.basic.lifetime = sim::Duration::seconds(0.5);
      p.common.max_hop_limit = 8;
      phy::Frame live;
      live.src = peer.mac();
      live.dst = addr.mac();
      switch (rng.uniform_int(0, 2)) {
        case 0: {  // GUC toward the empty horizon -> SCF buffer (+ hop ACK)
          net::ShortPositionVector de;
          de.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar,
                                      net::MacAddress{0xD0D0ULL}};
          de.timestamp = now;
          de.position = {2500.0, 0.0};
          p.common.type = net::CommonHeader::HeaderType::kGeoUnicast;
          p.extended = net::GucHeader{replay_sn++, so, de};
          p.payload = {0x42, 0x43};
          live.msg = security::share(security::SecuredMessage::sign(p, peer_signer));
          break;
        }
        case 1: {  // GBC whose area lies beyond every neighbour -> SCF buffer
          p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
          p.extended = net::GbcHeader{replay_sn++, so,
                                      geo::GeoArea::circle({2500.0, 0.0}, 150.0)};
          p.payload = {0x51};
          live.msg = security::share(security::SecuredMessage::sign(p, peer_signer));
          break;
        }
        default: {  // fresh beacon from an enrolled neighbour -> SCF flush
          const auto& [nbr, signer] = neighbors[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(neighbors.size()) - 1))];
          so.address = nbr;
          so.position = {400.0, 0.0};  // in range, with progress toward the east
          p.basic.remaining_hop_limit = 1;
          p.common.type = net::CommonHeader::HeaderType::kBeacon;
          p.common.max_hop_limit = 1;
          p.extended = net::BeaconHeader{so};
          live.src = nbr.mac();
          live.msg = security::share(security::SecuredMessage::sign(p, signer));
          break;
        }
      }
      router.ingest(live);
      for (int s = 0; s < 4 && events.step(); ++s) {
      }
      continue;
    }

    const net::Bytes mutant = mutate(wires, rng);

    const auto decoded = net::Codec::decode(mutant);
    if (decoded.has_value()) {
      ++decode_ok;
      // Round-trip invariant: anything decode accepts must re-encode to a
      // wire image that decodes back to the identical packet.
      const auto again = net::Codec::decode(net::Codec::encode(*decoded));
      if (!again.has_value() || !(*again == *decoded)) {
        std::fprintf(stderr, "FATAL: round-trip violation at iteration %lld (seed %llu)\n",
                     static_cast<long long>(i), static_cast<unsigned long long>(seed));
        return 1;
      }
    } else {
      ++decode_rejected;
    }

    frame.raw = mutant;
    router.ingest(frame);
  }

  const auto& stats = router.stats();
  const std::uint64_t semantic_drops = stats.ingest_invalid_pv + stats.ingest_invalid_rhl +
                                       stats.ingest_invalid_lifetime +
                                       stats.ingest_oversized_payload;
  std::printf("fuzz_codec: %lld iterations, seed %llu\n", static_cast<long long>(iterations),
              static_cast<unsigned long long>(seed));
  std::printf("  decode: %lld ok, %lld rejected\n", static_cast<long long>(decode_ok),
              static_cast<long long>(decode_rejected));
  std::printf("  router: %llu decode drops, %llu semantic drops, %llu auth failures\n",
              static_cast<unsigned long long>(stats.ingest_decode_failures),
              static_cast<unsigned long long>(semantic_drops),
              static_cast<unsigned long long>(stats.auth_failures));
  const auto& scf = router.scf().stats();
  std::printf("  replay: %lld live rounds (scf in=%llu flush=%llu expire=%llu drop=%llu, "
              "retx=%llu)\n",
              static_cast<long long>(replayed), static_cast<unsigned long long>(scf.inserted),
              static_cast<unsigned long long>(scf.flushed),
              static_cast<unsigned long long>(scf.expired),
              static_cast<unsigned long long>(scf.head_drops),
              static_cast<unsigned long long>(stats.retx_attempts));

  // Partition invariant: each fed frame increments at most one ingest drop
  // counter, so their sum can never exceed the number of frames fed. (Frames
  // that pass validation land in the auth/duplicate/handler counters.)
  if (stats.ingest_decode_failures + semantic_drops > static_cast<std::uint64_t>(iterations)) {
    std::fprintf(stderr, "FATAL: drop counters exceed frames fed\n");
    return 1;
  }
  return 0;
}

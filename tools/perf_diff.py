#!/usr/bin/env python3
"""Compare a fresh bench_micro JSON against the committed baseline.

Usage: perf_diff.py BASELINE.json FRESH.json [--max-regression 0.25]

Only the gated hot-path kernels are thresholded — they are the paths the
perf PRs pinned and they are stable enough on shared runners to gate on
(single-digit-nanosecond memo hits and flat-table probes, not multi-
microsecond scenario slices). Every other benchmark is reported for the
trajectory but never fails the job. Exit code 1 on any gated kernel
regressing by more than --max-regression (fractional, default 0.25).
"""

import argparse
import json
import sys

# Hot-path kernels under the regression gate. Substring-free exact names;
# parameterised benchmarks gate each Arg row listed here.
GATED = [
    "BM_VerifyMessageWarm",
    "BM_EventQueueScheduleFire",
    "BM_GfSelect/256",
    "BM_GfSelect/1024",
    "BM_LocationTableUpdate/64",
    "BM_LocationTableUpdate/512",
]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["ns_per_op"] for b in doc["benchmarks"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regression", type=float, default=0.25)
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    print(f"{'benchmark':<40} {'baseline':>12} {'fresh':>12} {'delta':>8}  gate")
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"{name:<40} {'-':>12} {fresh[name]:>12.2f} {'new':>8}  -")
            continue
        if name not in fresh:
            # A gated kernel silently disappearing is itself a failure: the
            # gate would otherwise go dark without anyone noticing.
            if name in GATED:
                failures.append(f"{name}: present in baseline but missing from fresh run")
            print(f"{name:<40} {base[name]:>12.2f} {'-':>12} {'gone':>8}  {'FAIL' if name in GATED else '-'}")
            continue
        delta = (fresh[name] - base[name]) / base[name] if base[name] > 0 else 0.0
        gated = name in GATED
        verdict = "-"
        if gated:
            verdict = "ok"
            if delta > args.max_regression:
                verdict = "FAIL"
                failures.append(
                    f"{name}: {base[name]:.2f} -> {fresh[name]:.2f} ns/op "
                    f"(+{delta * 100.0:.1f}% > {args.max_regression * 100.0:.0f}%)"
                )
        print(f"{name:<40} {base[name]:>12.2f} {fresh[name]:>12.2f} {delta * 100.0:>+7.1f}%  {verdict}")

    if failures:
        print("\nperf_diff: hot-path regression(s) over threshold:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf_diff: all gated kernels within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
